#include "atlas/synthetic_atlas.h"

#include <array>
#include <cmath>
#include <queue>
#include <vector>

#include "util/string_util.h"

namespace neuroprint::atlas {
namespace {

// Ellipsoidal brain mask test in voxel coordinates.
bool InsideMask(std::size_t x, std::size_t y, std::size_t z,
                const SyntheticAtlasConfig& config) {
  const double cx = 0.5 * (static_cast<double>(config.nx) - 1.0);
  const double cy = 0.5 * (static_cast<double>(config.ny) - 1.0);
  const double cz = 0.5 * (static_cast<double>(config.nz) - 1.0);
  const double rx = config.mask_fraction * cx;
  const double ry = config.mask_fraction * cy;
  const double rz = config.mask_fraction * cz;
  if (rx <= 0.0 || ry <= 0.0 || rz <= 0.0) return false;
  const double dx = (static_cast<double>(x) - cx) / rx;
  const double dy = (static_cast<double>(y) - cy) / ry;
  const double dz = (static_cast<double>(z) - cz) / rz;
  return dx * dx + dy * dy + dz * dz <= 1.0;
}

}  // namespace

Result<Atlas> GenerateSyntheticAtlas(const SyntheticAtlasConfig& config) {
  if (config.num_regions == 0) {
    return Status::InvalidArgument("GenerateSyntheticAtlas: zero regions");
  }
  if (config.nx == 0 || config.ny == 0 || config.nz == 0) {
    return Status::InvalidArgument("GenerateSyntheticAtlas: empty grid");
  }

  // Collect mask voxels.
  std::vector<std::array<std::size_t, 3>> mask_voxels;
  for (std::size_t z = 0; z < config.nz; ++z) {
    for (std::size_t y = 0; y < config.ny; ++y) {
      for (std::size_t x = 0; x < config.nx; ++x) {
        if (InsideMask(x, y, z, config)) mask_voxels.push_back({x, y, z});
      }
    }
  }
  if (mask_voxels.size() < config.num_regions) {
    return Status::InvalidArgument(StrFormat(
        "GenerateSyntheticAtlas: mask has %zu voxels but %zu regions "
        "requested",
        mask_voxels.size(), config.num_regions));
  }

  Atlas atlas(config.nx, config.ny, config.nz, config.num_regions);

  // Sample distinct seed voxels, then grow regions with a multi-source BFS
  // (discrete Voronoi tessellation under the 6-connected graph metric).
  Rng rng(config.seed);
  std::vector<std::size_t> indices = rng.Permutation(mask_voxels.size());
  std::queue<std::array<std::size_t, 3>> frontier;
  for (std::size_t r = 0; r < config.num_regions; ++r) {
    const auto [x, y, z] = mask_voxels[indices[r]];
    atlas.set_label(x, y, z, static_cast<std::int32_t>(r + 1));
    frontier.push({x, y, z});
  }

  const std::ptrdiff_t neighbors[6][3] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                          {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  while (!frontier.empty()) {
    const auto [x, y, z] = frontier.front();
    frontier.pop();
    const std::int32_t region = atlas.label(x, y, z);
    for (const auto& d : neighbors) {
      const std::ptrdiff_t nx_i = static_cast<std::ptrdiff_t>(x) + d[0];
      const std::ptrdiff_t ny_i = static_cast<std::ptrdiff_t>(y) + d[1];
      const std::ptrdiff_t nz_i = static_cast<std::ptrdiff_t>(z) + d[2];
      if (nx_i < 0 || ny_i < 0 || nz_i < 0 ||
          nx_i >= static_cast<std::ptrdiff_t>(config.nx) ||
          ny_i >= static_cast<std::ptrdiff_t>(config.ny) ||
          nz_i >= static_cast<std::ptrdiff_t>(config.nz)) {
        continue;
      }
      const auto ux = static_cast<std::size_t>(nx_i);
      const auto uy = static_cast<std::size_t>(ny_i);
      const auto uz = static_cast<std::size_t>(nz_i);
      if (!InsideMask(ux, uy, uz, config)) continue;
      if (atlas.label(ux, uy, uz) != kBackground) continue;
      atlas.set_label(ux, uy, uz, region);
      frontier.push({ux, uy, uz});
    }
  }

  NP_RETURN_IF_ERROR(atlas.Validate());
  return atlas;
}

Result<Atlas> GlasserLikeAtlas(std::uint64_t seed) {
  SyntheticAtlasConfig config;
  config.num_regions = 360;
  config.seed = seed;
  return GenerateSyntheticAtlas(config);
}

Result<Atlas> Aal2LikeAtlas(std::uint64_t seed) {
  SyntheticAtlasConfig config;
  config.nx = 24;
  config.ny = 28;
  config.nz = 24;
  config.num_regions = 116;
  config.seed = seed;
  return GenerateSyntheticAtlas(config);
}

}  // namespace neuroprint::atlas
