#include "atlas/atlas_io.h"

#include <cmath>

#include "nifti/nifti_io.h"
#include "util/string_util.h"

namespace neuroprint::atlas {

Result<Atlas> AtlasFromLabelVolume(const image::Volume3D& labels) {
  if (labels.empty()) {
    return Status::InvalidArgument("AtlasFromLabelVolume: empty volume");
  }
  std::int32_t max_label = 0;
  for (float v : labels.flat()) {
    if (!std::isfinite(v) || v < 0.0f) {
      return Status::CorruptData(
          "AtlasFromLabelVolume: labels must be non-negative and finite");
    }
    const double rounded = std::round(v);
    if (std::fabs(static_cast<double>(v) - rounded) > 1e-3) {
      return Status::CorruptData(StrFormat(
          "AtlasFromLabelVolume: non-integral label value %.4f",
          static_cast<double>(v)));
    }
    max_label = std::max(max_label, static_cast<std::int32_t>(rounded));
  }
  if (max_label == 0) {
    return Status::CorruptData("AtlasFromLabelVolume: no labelled voxels");
  }

  Atlas atlas(labels.nx(), labels.ny(), labels.nz(),
              static_cast<std::size_t>(max_label));
  for (std::size_t z = 0; z < labels.nz(); ++z) {
    for (std::size_t y = 0; y < labels.ny(); ++y) {
      for (std::size_t x = 0; x < labels.nx(); ++x) {
        atlas.set_label(x, y, z,
                        static_cast<std::int32_t>(std::round(labels.at(x, y, z))));
      }
    }
  }
  NP_RETURN_IF_ERROR(atlas.Validate());
  return atlas;
}

image::Volume3D AtlasToLabelVolume(const Atlas& atlas) {
  image::Volume3D volume(atlas.nx(), atlas.ny(), atlas.nz());
  for (std::size_t z = 0; z < atlas.nz(); ++z) {
    for (std::size_t y = 0; y < atlas.ny(); ++y) {
      for (std::size_t x = 0; x < atlas.nx(); ++x) {
        volume.at(x, y, z) = static_cast<float>(atlas.label(x, y, z));
      }
    }
  }
  return volume;
}

Result<Atlas> ReadAtlasNifti(const std::string& path) {
  auto image = nifti::ReadNifti(path);
  if (!image.ok()) return image.status();
  if (image->data.nt() != 1) {
    return Status::InvalidArgument(
        "ReadAtlasNifti: atlas must be a 3-D label image");
  }
  image::Volume3D labels(image->data.nx(), image->data.ny(), image->data.nz());
  std::copy(image->data.data(), image->data.data() + image->data.size(),
            labels.data());
  return AtlasFromLabelVolume(labels);
}

Status WriteAtlasNifti(const std::string& path, const Atlas& atlas) {
  if (atlas.empty()) {
    return Status::InvalidArgument("WriteAtlasNifti: empty atlas");
  }
  nifti::WriteOptions options;
  options.datatype = atlas.num_regions() > 32767 ? nifti::DataType::kInt32
                                                 : nifti::DataType::kInt16;
  options.integer_autoscale = false;  // Labels must round-trip exactly.
  options.description = "neuroprint atlas labels";
  return nifti::WriteNifti3D(path, AtlasToLabelVolume(atlas), options);
}

}  // namespace neuroprint::atlas
