// Brain atlas: a label volume assigning each voxel to a parcel (region).
//
// The paper uses the Glasser multi-modal parcellation (360 cortical
// regions) for HCP and AAL2 (116 regions -> 6670 region pairs) for
// ADHD-200. We model an atlas as a dense int32 label grid where 0 is
// background (non-brain) and labels 1..num_regions are parcels.

#ifndef NEUROPRINT_ATLAS_ATLAS_H_
#define NEUROPRINT_ATLAS_ATLAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace neuroprint::atlas {

/// Background (non-brain) label.
inline constexpr std::int32_t kBackground = 0;

/// Dense voxel-label parcellation.
class Atlas {
 public:
  Atlas() = default;

  /// Grid of the given shape, all background.
  Atlas(std::size_t nx, std::size_t ny, std::size_t nz,
        std::size_t num_regions)
      : nx_(nx), ny_(ny), nz_(nz), num_regions_(num_regions),
        labels_(nx * ny * nz, kBackground) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t num_regions() const { return num_regions_; }
  bool empty() const { return labels_.empty(); }

  std::int32_t label(std::size_t x, std::size_t y, std::size_t z) const {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    return labels_[x + nx_ * (y + ny_ * z)];
  }
  void set_label(std::size_t x, std::size_t y, std::size_t z,
                 std::int32_t value) {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    NP_DCHECK(value >= 0 &&
              value <= static_cast<std::int32_t>(num_regions_));
    labels_[x + nx_ * (y + ny_ * z)] = value;
  }

  const std::vector<std::int32_t>& flat() const { return labels_; }

  /// Number of voxels carrying each label 1..num_regions (index 0 of the
  /// result is region 1).
  std::vector<std::size_t> RegionVoxelCounts() const;

  /// Number of non-background voxels.
  std::size_t BrainVoxelCount() const;

  /// Validates invariants: labels within [0, num_regions], every region
  /// non-empty.
  Status Validate() const;

  /// Human-readable region name ("R042"-style synthetic names).
  std::string RegionName(std::size_t region_index) const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::size_t num_regions_ = 0;
  std::vector<std::int32_t> labels_;
};

}  // namespace neuroprint::atlas

#endif  // NEUROPRINT_ATLAS_ATLAS_H_
