#include "atlas/atlas.h"

#include "util/string_util.h"

namespace neuroprint::atlas {

std::vector<std::size_t> Atlas::RegionVoxelCounts() const {
  std::vector<std::size_t> counts(num_regions_, 0);
  for (std::int32_t label : labels_) {
    if (label > 0 && static_cast<std::size_t>(label) <= num_regions_) {
      ++counts[static_cast<std::size_t>(label) - 1];
    }
  }
  return counts;
}

std::size_t Atlas::BrainVoxelCount() const {
  std::size_t count = 0;
  for (std::int32_t label : labels_) {
    if (label != kBackground) ++count;
  }
  return count;
}

Status Atlas::Validate() const {
  for (std::int32_t label : labels_) {
    if (label < 0 || static_cast<std::size_t>(label) > num_regions_) {
      return Status::CorruptData(
          StrFormat("atlas label %d outside [0, %zu]", label, num_regions_));
    }
  }
  const std::vector<std::size_t> counts = RegionVoxelCounts();
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] == 0) {
      return Status::CorruptData(StrFormat("atlas region %zu is empty", r + 1));
    }
  }
  return Status::OK();
}

std::string Atlas::RegionName(std::size_t region_index) const {
  return StrFormat("R%03zu", region_index + 1);
}

}  // namespace neuroprint::atlas
