#include "atlas/region_timeseries.h"

namespace neuroprint::atlas {

Result<linalg::Matrix> ExtractRegionTimeSeries(const image::Volume4D& run,
                                               const Atlas& atlas) {
  if (run.empty()) {
    return Status::InvalidArgument("ExtractRegionTimeSeries: empty run");
  }
  if (run.nx() != atlas.nx() || run.ny() != atlas.ny() ||
      run.nz() != atlas.nz()) {
    return Status::InvalidArgument(
        "ExtractRegionTimeSeries: run and atlas grids differ");
  }
  const std::size_t regions = atlas.num_regions();
  const std::size_t nt = run.nt();
  linalg::Matrix series(regions, nt);
  std::vector<std::size_t> counts(regions, 0);

  // Single pass per volume in storage order; label lookups are flat.
  const std::vector<std::int32_t>& labels = atlas.flat();
  for (std::size_t t = 0; t < nt; ++t) {
    const float* vol = run.VolumePtr(t);
    for (std::size_t i = 0; i < run.voxels_per_volume(); ++i) {
      const std::int32_t label = labels[i];
      if (label == kBackground) continue;
      series(static_cast<std::size_t>(label) - 1, t) +=
          static_cast<double>(vol[i]);
      if (t == 0) ++counts[static_cast<std::size_t>(label) - 1];
    }
  }
  for (std::size_t r = 0; r < regions; ++r) {
    if (counts[r] == 0) {
      return Status::FailedPrecondition(
          "ExtractRegionTimeSeries: atlas has an empty region");
    }
    const double inv = 1.0 / static_cast<double>(counts[r]);
    double* row = series.RowPtr(r);
    for (std::size_t t = 0; t < nt; ++t) row[t] *= inv;
  }
  return series;
}

}  // namespace neuroprint::atlas
