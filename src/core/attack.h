// The end-to-end de-anonymization attack (the paper's Figure 3 workflow):
//
//   1. Fit: compute leverage scores on the de-anonymized group matrix and
//      keep the top-t features (the principal features subspace).
//   2. Identify: restrict both group matrices to those features, correlate
//      every known subject against every anonymous subject, and assign
//      each anonymous scan to the most-correlated known identity.

#ifndef NEUROPRINT_CORE_ATTACK_H_
#define NEUROPRINT_CORE_ATTACK_H_

#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "core/leverage.h"
#include "core/matcher.h"
#include "util/status.h"
#include "util/trace.h"

namespace neuroprint::core {

struct AttackOptions {
  /// Number of leverage-selected features to keep. The paper reduces the
  /// 64620-feature resting-state matrices to fewer than 100 rows.
  std::size_t num_features = 100;
  /// Feature-selection knobs; set `leverage.sketch = true` to fit the whole
  /// attack on randomized sketched leverage scores (several times faster at
  /// the paper's shape, >= 95% identical feature sets).
  LeverageOptions leverage;
  /// Threads for the similarity / argmax stages of Identify (captured at
  /// Fit time). Never changes results, only wall-clock time.
  ParallelContext parallel;
  /// Observability: `trace.enabled = true` collects spans and metrics for
  /// this Fit and the resulting attack's Identify calls even when
  /// NEUROPRINT_TRACE is unset (see util/trace.h).
  trace::TraceConfig trace;
};

/// Outcome of one identification run.
struct AttackResult {
  linalg::Matrix similarity;  ///< known subjects x anonymous subjects.
  std::vector<std::size_t> predicted_index;  ///< Per anonymous subject.
  std::vector<std::string> predicted_ids;
  /// Fraction of anonymous subjects assigned their true identity
  /// (requires the anonymous group matrix to carry ground-truth ids).
  double accuracy = 0.0;
};

/// A fitted attack: the selected feature set plus the reduced known-group
/// matrix, reusable against any number of target datasets.
class DeanonymizationAttack {
 public:
  /// Fits the attack on the de-anonymized dataset.
  static Result<DeanonymizationAttack> Fit(
      const connectome::GroupMatrix& known, const AttackOptions& options = {});

  /// Feature rows (into the original feature space) the attack uses.
  const std::vector<std::size_t>& selected_features() const {
    return selected_features_;
  }

  /// Leverage scores the selection was based on (full feature space).
  const linalg::Vector& leverage_scores() const { return leverage_scores_; }

  /// Identifies every subject of `anonymous` against the known dataset.
  /// The anonymous matrix must live in the same (full) feature space the
  /// attack was fitted on.
  Result<AttackResult> Identify(const connectome::GroupMatrix& anonymous) const;

 private:
  connectome::GroupMatrix reduced_known_;
  std::vector<std::size_t> selected_features_;
  linalg::Vector leverage_scores_;
  std::size_t full_feature_count_ = 0;
  ParallelContext parallel_;
  trace::TraceConfig trace_;
};

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_ATTACK_H_
