// The end-to-end de-anonymization attack (the paper's Figure 3 workflow):
//
//   1. Fit: compute leverage scores on the de-anonymized group matrix and
//      keep the top-t features (the principal features subspace).
//   2. Identify: restrict both group matrices to those features, correlate
//      every known subject against every anonymous subject, and assign
//      each anonymous scan to the most-correlated known identity.

#ifndef NEUROPRINT_CORE_ATTACK_H_
#define NEUROPRINT_CORE_ATTACK_H_

#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "connectome/matrix_store.h"
#include "core/leverage.h"
#include "core/matcher.h"
#include "util/batch.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/trace.h"

namespace neuroprint::core {

struct AttackOptions {
  /// Number of leverage-selected features to keep. The paper reduces the
  /// 64620-feature resting-state matrices to fewer than 100 rows.
  std::size_t num_features = 100;
  /// Feature-selection knobs; set `leverage.sketch = true` to fit the whole
  /// attack on randomized sketched leverage scores (several times faster at
  /// the paper's shape, >= 95% identical feature sets).
  LeverageOptions leverage;
  /// Threads for the similarity / argmax stages of Identify (captured at
  /// Fit time). Never changes results, only wall-clock time.
  ParallelContext parallel;
  /// Observability: `trace.enabled = true` collects spans and metrics for
  /// this Fit and the resulting attack's Identify calls even when
  /// NEUROPRINT_TRACE is unset (see util/trace.h).
  trace::TraceConfig trace;
  /// How Fit / Identify treat subjects whose feature column is unusable
  /// (non-finite values): fail-fast (default) errors with the
  /// lowest-index subject; skip-and-report / quorum drop them and record
  /// the drops in the BatchReport passed to Fit / Identify (see
  /// util/batch.h). Captured at Fit time for Identify.
  FailurePolicy failure_policy;
  /// Fault injection for this Fit and its Identify calls: a non-empty
  /// schedule replaces the process schedule (see util/fault.h).
  fault::FaultConfig fault;
};

/// Outcome of one identification run.
struct AttackResult {
  linalg::Matrix similarity;  ///< known subjects x anonymous subjects.
  std::vector<std::size_t> predicted_index;  ///< Per anonymous subject.
  std::vector<std::string> predicted_ids;
  /// Fraction of anonymous subjects assigned their true identity
  /// (requires the anonymous group matrix to carry ground-truth ids).
  double accuracy = 0.0;
};

/// A fitted attack: the selected feature set plus the reduced known-group
/// matrix, reusable against any number of target datasets.
class DeanonymizationAttack {
 public:
  /// Fits the attack on the de-anonymized dataset. Under a non-fail-fast
  /// failure policy, known subjects with non-finite feature columns are
  /// dropped before leverage scoring and recorded in `report` (may be
  /// null; stage "fit_screen").
  static Result<DeanonymizationAttack> Fit(
      const connectome::GroupMatrix& known, const AttackOptions& options = {},
      BatchReport* report = nullptr);

  /// Out-of-core Fit: identical semantics, reports, and — bit for bit —
  /// the same leverage scores, selected features, and reduced matrix as
  /// Fit of the materialized store (the window determinism contract of
  /// connectome/matrix_store.h), while keeping only column windows of the
  /// cohort resident. `stream` bounds the working set and never changes
  /// results.
  static Result<DeanonymizationAttack> FitStreamed(
      const connectome::MatrixStore& known, const AttackOptions& options = {},
      const connectome::StreamOptions& stream = {},
      BatchReport* report = nullptr);

  /// Feature rows (into the original feature space) the attack uses.
  const std::vector<std::size_t>& selected_features() const {
    return selected_features_;
  }

  /// Leverage scores the selection was based on (full feature space).
  const linalg::Vector& leverage_scores() const { return leverage_scores_; }

  /// Identifies every subject of `anonymous` against the known dataset.
  /// The anonymous matrix must live in the same (full) feature space the
  /// attack was fitted on. Under the fitted non-fail-fast failure policy,
  /// anonymous subjects with non-finite columns are dropped and recorded
  /// in `report` (may be null; stage "identify_screen") — AttackResult
  /// then covers only the survivors, in their original order.
  Result<AttackResult> Identify(const connectome::GroupMatrix& anonymous,
                                BatchReport* report = nullptr) const;

  /// Out-of-core Identify: bitwise-identical AttackResult to Identify of
  /// the materialized store; only the selected feature rows and one
  /// column window at a time are held in RAM.
  Result<AttackResult> IdentifyStreamed(
      const connectome::MatrixStore& anonymous,
      const connectome::StreamOptions& stream = {},
      BatchReport* report = nullptr) const;

 private:
  /// Shared tail of Identify / IdentifyStreamed: similarity, argmax,
  /// predicted ids, and accuracy over the feature-reduced target.
  Result<AttackResult> IdentifyReduced(
      const connectome::GroupMatrix& reduced_target) const;

  connectome::GroupMatrix reduced_known_;
  std::vector<std::size_t> selected_features_;
  linalg::Vector leverage_scores_;
  std::size_t full_feature_count_ = 0;
  ParallelContext parallel_;
  trace::TraceConfig trace_;
  FailurePolicy failure_policy_;
  fault::FaultConfig fault_;
};

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_ATTACK_H_
