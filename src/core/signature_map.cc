#include "core/signature_map.h"

#include <algorithm>

#include "connectome/connectome.h"
#include "util/string_util.h"

namespace neuroprint::core {

Result<std::vector<RegionImportance>> ComputeRegionImportance(
    const std::vector<std::size_t>& selected_edges,
    const linalg::Vector& leverage_scores, std::size_t regions) {
  if (regions < 2) {
    return Status::InvalidArgument(
        "ComputeRegionImportance: need at least 2 regions");
  }
  const std::size_t expected_features = connectome::NumEdges(regions);
  if (leverage_scores.size() != expected_features) {
    return Status::InvalidArgument(StrFormat(
        "ComputeRegionImportance: %zu leverage scores for %zu regions "
        "(expected %zu edges)",
        leverage_scores.size(), regions, expected_features));
  }

  std::vector<RegionImportance> importance(regions);
  for (std::size_t r = 0; r < regions; ++r) importance[r].region_index = r;

  for (std::size_t edge : selected_edges) {
    if (edge >= expected_features) {
      return Status::OutOfRange(
          StrFormat("ComputeRegionImportance: edge %zu out of range", edge));
    }
    auto pair = connectome::EdgeIndexToRegionPair(edge, regions);
    if (!pair.ok()) return pair.status();
    const double half_mass = 0.5 * leverage_scores[edge];
    for (const std::size_t endpoint : {pair->first, pair->second}) {
      ++importance[endpoint].edge_count;
      importance[endpoint].leverage_mass += half_mass;
    }
  }

  std::stable_sort(importance.begin(), importance.end(),
                   [](const RegionImportance& a, const RegionImportance& b) {
                     return a.leverage_mass > b.leverage_mass;
                   });
  return importance;
}

Result<image::Volume3D> RenderSignatureMap(
    const std::vector<RegionImportance>& importance,
    const atlas::Atlas& atlas) {
  if (atlas.empty()) {
    return Status::InvalidArgument("RenderSignatureMap: empty atlas");
  }
  linalg::Vector mass_by_region(atlas.num_regions(), 0.0);
  for (const RegionImportance& entry : importance) {
    if (entry.region_index >= atlas.num_regions()) {
      return Status::OutOfRange(
          "RenderSignatureMap: region index outside the atlas");
    }
    mass_by_region[entry.region_index] = entry.leverage_mass;
  }
  image::Volume3D map(atlas.nx(), atlas.ny(), atlas.nz());
  for (std::size_t z = 0; z < atlas.nz(); ++z) {
    for (std::size_t y = 0; y < atlas.ny(); ++y) {
      for (std::size_t x = 0; x < atlas.nx(); ++x) {
        const std::int32_t label = atlas.label(x, y, z);
        if (label != atlas::kBackground) {
          map.at(x, y, z) = static_cast<float>(
              mass_by_region[static_cast<std::size_t>(label) - 1]);
        }
      }
    }
  }
  return map;
}

}  // namespace neuroprint::core
