#include "core/svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace neuroprint::core {

Result<LinearSvr> LinearSvr::Fit(const linalg::Matrix& x,
                                 const linalg::Vector& y,
                                 const SvrOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("LinearSvr::Fit: empty training data");
  }
  if (y.size() != n) {
    return Status::InvalidArgument("LinearSvr::Fit: target size mismatch");
  }
  if (!x.AllFinite()) {
    return Status::InvalidArgument("LinearSvr::Fit: non-finite features");
  }
  if (options.cost <= 0.0 || options.epsilon < 0.0) {
    return Status::InvalidArgument("LinearSvr::Fit: bad cost/epsilon");
  }

  // The bias is folded in as an implicit constant feature of value 1
  // (regularized bias, standard for dual coordinate descent).
  const std::size_t dim = d + 1;
  linalg::Vector w(dim, 0.0);
  linalg::Vector beta(n, 0.0);  // Dual coefficients in [-C, C].
  linalg::Vector qii(n, 0.0);   // Diagonal of the Gram matrix.
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    double sum = 1.0;  // Bias feature.
    for (std::size_t j = 0; j < d; ++j) sum += row[j] * row[j];
    qii[i] = sum;
  }

  Rng rng(options.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  int epoch = 0;
  for (; epoch < options.max_epochs; ++epoch) {
    rng.Shuffle(order);
    double max_step = 0.0;
    for (std::size_t idx : order) {
      const double* row = x.RowPtr(idx);
      // g = w . x_i - y_i (gradient of the smooth dual part).
      double g = w[d];  // Bias feature contribution.
      for (std::size_t j = 0; j < d; ++j) g += w[j] * row[j];
      g -= y[idx];

      const double b_old = beta[idx];
      // Closed-form coordinate minimizer of
      //   0.5 Qii (b - b_old)^2 + g (b - b_old) + eps |b|  over [-C, C].
      double b_new;
      if (g + options.epsilon < qii[idx] * b_old) {
        b_new = b_old - (g + options.epsilon) / qii[idx];
      } else if (g - options.epsilon > qii[idx] * b_old) {
        b_new = b_old - (g - options.epsilon) / qii[idx];
      } else {
        b_new = 0.0;
      }
      b_new = std::clamp(b_new, -options.cost, options.cost);

      const double delta = b_new - b_old;
      if (delta != 0.0) {
        beta[idx] = b_new;
        for (std::size_t j = 0; j < d; ++j) w[j] += delta * row[j];
        w[d] += delta;
        max_step = std::max(max_step, std::fabs(delta));
      }
    }
    if (max_step < options.tolerance) {
      ++epoch;
      break;
    }
  }

  LinearSvr model;
  model.weights_.assign(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(d));
  model.bias_ = w[d];
  model.epochs_run_ = epoch;
  return model;
}

double LinearSvr::Predict(const linalg::Vector& features) const {
  NP_CHECK_EQ(features.size(), weights_.size());
  double sum = bias_;
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    sum += weights_[j] * features[j];
  }
  return sum;
}

Result<linalg::Vector> LinearSvr::PredictBatch(const linalg::Matrix& x) const {
  if (x.cols() != weights_.size()) {
    return Status::InvalidArgument("LinearSvr::PredictBatch: dim mismatch");
  }
  linalg::Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double sum = bias_;
    for (std::size_t j = 0; j < weights_.size(); ++j) sum += weights_[j] * row[j];
    out[i] = sum;
  }
  return out;
}

Result<double> NormalizedRmsePercent(const linalg::Vector& predicted,
                                     const linalg::Vector& truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    return Status::InvalidArgument("NormalizedRmsePercent: size mismatch");
  }
  double sum = 0.0;
  double mean = 0.0;
  double lo = truth[0], hi = truth[0];
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double diff = predicted[i] - truth[i];
    sum += diff * diff;
    mean += truth[i];
    lo = std::min(lo, truth[i]);
    hi = std::max(hi, truth[i]);
  }
  const double rmse = std::sqrt(sum / static_cast<double>(truth.size()));
  mean = std::fabs(mean) / static_cast<double>(truth.size());
  if (mean > 0.0) return 100.0 * rmse / mean;
  const double range = hi - lo;
  return 100.0 * (range > 0.0 ? rmse / range : rmse);
}

}  // namespace neuroprint::core
