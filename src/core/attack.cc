#include "core/attack.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/metrics.h"
#include "util/string_util.h"

namespace neuroprint::core {
namespace {

// Screens a group matrix for unusable subjects (any non-finite value in
// the feature column) and resolves the batch against `policy`: fail-fast
// errors on the lowest-index bad subject, skip/quorum record the drops in
// `report` (stage = `stage`) and return the surviving column indices.
Result<std::vector<std::size_t>> ScreenSubjects(
    const connectome::GroupMatrix& matrix, const FailurePolicy& policy,
    const char* stage, BatchReport* report) {
  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  report->attempted = matrix.num_subjects();

  const linalg::Matrix& data = matrix.data();
  std::vector<std::size_t> survivors;
  survivors.reserve(matrix.num_subjects());
  for (std::size_t j = 0; j < matrix.num_subjects(); ++j) {
    bool finite = true;
    for (std::size_t i = 0; i < matrix.num_features() && finite; ++i) {
      finite = std::isfinite(data(i, j));
    }
    if (finite) {
      survivors.push_back(j);
      continue;
    }
    BatchItemReport item;
    item.index = j;
    item.id = matrix.subject_ids()[j];
    item.stage = stage;
    item.status = Status::CorruptData(StrFormat(
        "subject %s has non-finite feature values", item.id.c_str()));
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }
  return survivors;
}

// Streamed twin of ScreenSubjects: windows the columns through RAM and
// applies the identical finiteness screen, producing the same survivors
// and the same report entries as screening the materialized matrix.
Result<std::vector<std::size_t>> ScreenSubjectsStreamed(
    const connectome::MatrixStore& store, std::size_t window_cols,
    const FailurePolicy& policy, const char* stage, BatchReport* report) {
  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  report->attempted = store.num_subjects();

  const std::size_t w = connectome::DeriveWindowCols(
      store.num_features(), store.num_subjects(), window_cols);
  std::vector<std::size_t> survivors;
  survivors.reserve(store.num_subjects());
  linalg::Matrix slab;
  for (std::size_t c0 = 0; c0 < store.num_subjects(); c0 += w) {
    const std::size_t wc = std::min(w, store.num_subjects() - c0);
    NP_RETURN_IF_ERROR(store.ReadColumns(c0, wc, &slab));
    for (std::size_t c = 0; c < wc; ++c) {
      const std::size_t j = c0 + c;
      bool finite = true;
      for (std::size_t i = 0; i < store.num_features() && finite; ++i) {
        finite = std::isfinite(slab(i, c));
      }
      if (finite) {
        survivors.push_back(j);
        continue;
      }
      BatchItemReport item;
      item.index = j;
      item.id = store.subject_ids()[j];
      item.stage = stage;
      item.status = Status::CorruptData(StrFormat(
          "subject %s has non-finite feature values", item.id.c_str()));
      report->failed.push_back(std::move(item));
    }
  }
  NP_RETURN_IF_ERROR(ResolveBatch(policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }
  return survivors;
}

// Windowed gather of the selected feature rows — the streamed analogue of
// RestrictToFeatures: same values, same subject ids, never more than one
// column window resident.
Result<connectome::GroupMatrix> GatherFeatureRows(
    const connectome::MatrixStore& store, const std::vector<std::size_t>& rows,
    std::size_t window_cols) {
  const std::size_t n = store.num_subjects();
  const std::size_t w =
      connectome::DeriveWindowCols(store.num_features(), n, window_cols);
  std::vector<linalg::Vector> columns(n);
  linalg::Matrix slab;
  for (std::size_t c0 = 0; c0 < n; c0 += w) {
    const std::size_t wc = std::min(w, n - c0);
    NP_RETURN_IF_ERROR(store.ReadColumns(c0, wc, &slab));
    for (std::size_t c = 0; c < wc; ++c) {
      columns[c0 + c].resize(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        columns[c0 + c][i] = slab(rows[i], c);
      }
    }
  }
  return connectome::GroupMatrix::FromFeatureColumns(columns,
                                                     store.subject_ids());
}

}  // namespace

Result<DeanonymizationAttack> DeanonymizationAttack::Fit(
    const connectome::GroupMatrix& known, const AttackOptions& options,
    BatchReport* report) {
  trace::ScopedEnable trace_enable(options.trace.enabled);
  fault::ScopedSchedule fault_schedule(options.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.fit");
  NP_FAULT_POINT("attack.fit");
  if (options.num_features == 0) {
    return Status::InvalidArgument("AttackOptions: num_features must be > 0");
  }
  if (known.num_subjects() < 2) {
    return Status::InvalidArgument(
        "DeanonymizationAttack: need at least 2 known subjects");
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(survivors,
                      ScreenSubjects(known, options.failure_policy,
                                     "fit_screen", report));
  connectome::GroupMatrix screened_known;
  const connectome::GroupMatrix* fit_known = &known;
  if (survivors.size() < known.num_subjects()) {
    if (survivors.size() < 2) {
      return Status::FailedPrecondition(
          "DeanonymizationAttack: fewer than 2 usable known subjects");
    }
    NP_ASSIGN_OR_RETURN(screened_known, known.RestrictToSubjects(survivors));
    fit_known = &screened_known;
  }
  // The leverage stage inherits the attack-wide thread knob unless its own
  // is set (AttackOptions{.leverage = {.sketch = true}} runs the whole fit
  // on the randomized sketch).
  LeverageOptions leverage = options.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options.parallel;
  }
  auto scores = ComputeLeverageScores(fit_known->data(), leverage);
  if (!scores.ok()) return scores.status();

  DeanonymizationAttack attack;
  attack.leverage_scores_ = std::move(scores).value();
  attack.selected_features_ =
      TopKIndices(attack.leverage_scores_, options.num_features);
  if (attack.selected_features_.size() < 2) {
    return Status::FailedPrecondition(
        "DeanonymizationAttack: fewer than 2 usable features");
  }
  NP_TRACE_SCOPE("attack.fit.restrict");
  auto reduced = fit_known->RestrictToFeatures(attack.selected_features_);
  if (!reduced.ok()) return reduced.status();
  attack.reduced_known_ = std::move(reduced).value();
  attack.full_feature_count_ = known.num_features();
  attack.parallel_ = options.parallel;
  attack.trace_ = options.trace;
  attack.failure_policy_ = options.failure_policy;
  attack.fault_ = options.fault;
  metrics::Count("attack.fits", 1);
  metrics::SetGauge("attack.selected_features",
                    static_cast<double>(attack.selected_features_.size()));
  return attack;
}

Result<DeanonymizationAttack> DeanonymizationAttack::FitStreamed(
    const connectome::MatrixStore& known, const AttackOptions& options,
    const connectome::StreamOptions& stream, BatchReport* report) {
  trace::ScopedEnable trace_enable(options.trace.enabled);
  fault::ScopedSchedule fault_schedule(options.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.fit");
  NP_FAULT_POINT("attack.fit");
  if (options.num_features == 0) {
    return Status::InvalidArgument("AttackOptions: num_features must be > 0");
  }
  if (known.num_subjects() < 2) {
    return Status::InvalidArgument(
        "DeanonymizationAttack: need at least 2 known subjects");
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(
      survivors, ScreenSubjectsStreamed(known, stream.window_cols,
                                        options.failure_policy, "fit_screen",
                                        report));
  std::optional<connectome::SubsetColumnsStore> screened_known;
  const connectome::MatrixStore* fit_known = &known;
  if (survivors.size() < known.num_subjects()) {
    if (survivors.size() < 2) {
      return Status::FailedPrecondition(
          "DeanonymizationAttack: fewer than 2 usable known subjects");
    }
    auto subset = connectome::SubsetColumnsStore::Create(known, survivors);
    if (!subset.ok()) return subset.status();
    screened_known = std::move(subset).value();
    fit_known = &*screened_known;
  }
  LeverageOptions leverage = options.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options.parallel;
  }
  auto scores = ComputeLeverageScoresStreamed(*fit_known, leverage, stream);
  if (!scores.ok()) return scores.status();

  DeanonymizationAttack attack;
  attack.leverage_scores_ = std::move(scores).value();
  attack.selected_features_ =
      TopKIndices(attack.leverage_scores_, options.num_features);
  if (attack.selected_features_.size() < 2) {
    return Status::FailedPrecondition(
        "DeanonymizationAttack: fewer than 2 usable features");
  }
  NP_TRACE_SCOPE("attack.fit.restrict");
  auto reduced = GatherFeatureRows(*fit_known, attack.selected_features_,
                                   stream.window_cols);
  if (!reduced.ok()) return reduced.status();
  attack.reduced_known_ = std::move(reduced).value();
  attack.full_feature_count_ = known.num_features();
  attack.parallel_ = options.parallel;
  attack.trace_ = options.trace;
  attack.failure_policy_ = options.failure_policy;
  attack.fault_ = options.fault;
  metrics::Count("attack.fits", 1);
  metrics::SetGauge("attack.selected_features",
                    static_cast<double>(attack.selected_features_.size()));
  return attack;
}

Result<AttackResult> DeanonymizationAttack::Identify(
    const connectome::GroupMatrix& anonymous, BatchReport* report) const {
  trace::ScopedEnable trace_enable(trace_.enabled);
  fault::ScopedSchedule fault_schedule(fault_.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.identify");
  NP_FAULT_POINT("attack.identify");
  if (anonymous.num_subjects() == 0) {
    return Status::InvalidArgument(
        "Identify: anonymous dataset has no subjects");
  }
  if (anonymous.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Identify: anonymous dataset has %zu features, attack was fitted "
        "on %zu — datasets must share a parcellation",
        anonymous.num_features(), full_feature_count_));
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(survivors, ScreenSubjects(anonymous, failure_policy_,
                                                "identify_screen", report));
  connectome::GroupMatrix screened;
  const connectome::GroupMatrix* target = &anonymous;
  if (survivors.size() < anonymous.num_subjects()) {
    NP_ASSIGN_OR_RETURN(screened, anonymous.RestrictToSubjects(survivors));
    target = &screened;
  }
  auto reduced = target->RestrictToFeatures(selected_features_);
  if (!reduced.ok()) return reduced.status();
  return IdentifyReduced(*reduced);
}

Result<AttackResult> DeanonymizationAttack::IdentifyStreamed(
    const connectome::MatrixStore& anonymous,
    const connectome::StreamOptions& stream, BatchReport* report) const {
  trace::ScopedEnable trace_enable(trace_.enabled);
  fault::ScopedSchedule fault_schedule(fault_.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.identify");
  NP_FAULT_POINT("attack.identify");
  if (anonymous.num_subjects() == 0) {
    return Status::InvalidArgument(
        "Identify: anonymous dataset has no subjects");
  }
  if (anonymous.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Identify: anonymous dataset has %zu features, attack was fitted "
        "on %zu — datasets must share a parcellation",
        anonymous.num_features(), full_feature_count_));
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(
      survivors, ScreenSubjectsStreamed(anonymous, stream.window_cols,
                                        failure_policy_, "identify_screen",
                                        report));
  std::optional<connectome::SubsetColumnsStore> screened;
  const connectome::MatrixStore* target = &anonymous;
  if (survivors.size() < anonymous.num_subjects()) {
    auto subset = connectome::SubsetColumnsStore::Create(anonymous, survivors);
    if (!subset.ok()) return subset.status();
    screened = std::move(subset).value();
    target = &*screened;
  }
  auto reduced =
      GatherFeatureRows(*target, selected_features_, stream.window_cols);
  if (!reduced.ok()) return reduced.status();
  return IdentifyReduced(*reduced);
}

Result<AttackResult> DeanonymizationAttack::IdentifyReduced(
    const connectome::GroupMatrix& reduced_target) const {
  metrics::Count("attack.identifies", 1);
  metrics::SetGauge("attack.identify_subjects",
                    static_cast<double>(reduced_target.num_subjects()));

  AttackResult result;
  {
    NP_TRACE_SCOPE("attack.identify.similarity");
    auto similarity =
        SimilarityMatrix(reduced_known_, reduced_target, parallel_);
    if (!similarity.ok()) return similarity.status();
    result.similarity = std::move(similarity).value();
  }
  {
    NP_TRACE_SCOPE("attack.identify.argmax");
    result.predicted_index = ArgmaxMatch(result.similarity, parallel_);
  }

  result.predicted_ids.reserve(result.predicted_index.size());
  for (std::size_t idx : result.predicted_index) {
    result.predicted_ids.push_back(reduced_known_.subject_ids()[idx]);
  }
  auto accuracy =
      IdentificationAccuracy(result.predicted_index,
                             reduced_known_.subject_ids(),
                             reduced_target.subject_ids());
  if (!accuracy.ok()) return accuracy.status();
  result.accuracy = *accuracy;
  return result;
}

}  // namespace neuroprint::core
