#include "core/attack.h"

#include "util/metrics.h"
#include "util/string_util.h"

namespace neuroprint::core {

Result<DeanonymizationAttack> DeanonymizationAttack::Fit(
    const connectome::GroupMatrix& known, const AttackOptions& options) {
  trace::ScopedEnable trace_enable(options.trace.enabled);
  NP_TRACE_SCOPE("attack.fit");
  if (options.num_features == 0) {
    return Status::InvalidArgument("AttackOptions: num_features must be > 0");
  }
  if (known.num_subjects() < 2) {
    return Status::InvalidArgument(
        "DeanonymizationAttack: need at least 2 known subjects");
  }
  // The leverage stage inherits the attack-wide thread knob unless its own
  // is set (AttackOptions{.leverage = {.sketch = true}} runs the whole fit
  // on the randomized sketch).
  LeverageOptions leverage = options.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options.parallel;
  }
  auto scores = ComputeLeverageScores(known.data(), leverage);
  if (!scores.ok()) return scores.status();

  DeanonymizationAttack attack;
  attack.leverage_scores_ = std::move(scores).value();
  attack.selected_features_ =
      TopKIndices(attack.leverage_scores_, options.num_features);
  if (attack.selected_features_.size() < 2) {
    return Status::FailedPrecondition(
        "DeanonymizationAttack: fewer than 2 usable features");
  }
  NP_TRACE_SCOPE("attack.fit.restrict");
  auto reduced = known.RestrictToFeatures(attack.selected_features_);
  if (!reduced.ok()) return reduced.status();
  attack.reduced_known_ = std::move(reduced).value();
  attack.full_feature_count_ = known.num_features();
  attack.parallel_ = options.parallel;
  attack.trace_ = options.trace;
  metrics::Count("attack.fits", 1);
  metrics::SetGauge("attack.selected_features",
                    static_cast<double>(attack.selected_features_.size()));
  return attack;
}

Result<AttackResult> DeanonymizationAttack::Identify(
    const connectome::GroupMatrix& anonymous) const {
  trace::ScopedEnable trace_enable(trace_.enabled);
  NP_TRACE_SCOPE("attack.identify");
  if (anonymous.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Identify: anonymous dataset has %zu features, attack was fitted "
        "on %zu — datasets must share a parcellation",
        anonymous.num_features(), full_feature_count_));
  }
  auto reduced = anonymous.RestrictToFeatures(selected_features_);
  if (!reduced.ok()) return reduced.status();
  metrics::Count("attack.identifies", 1);
  metrics::SetGauge("attack.identify_subjects",
                    static_cast<double>(anonymous.num_subjects()));

  AttackResult result;
  {
    NP_TRACE_SCOPE("attack.identify.similarity");
    auto similarity = SimilarityMatrix(reduced_known_, *reduced, parallel_);
    if (!similarity.ok()) return similarity.status();
    result.similarity = std::move(similarity).value();
  }
  {
    NP_TRACE_SCOPE("attack.identify.argmax");
    result.predicted_index = ArgmaxMatch(result.similarity, parallel_);
  }

  result.predicted_ids.reserve(result.predicted_index.size());
  for (std::size_t idx : result.predicted_index) {
    result.predicted_ids.push_back(reduced_known_.subject_ids()[idx]);
  }
  auto accuracy =
      IdentificationAccuracy(result.predicted_index,
                             reduced_known_.subject_ids(),
                             anonymous.subject_ids());
  if (!accuracy.ok()) return accuracy.status();
  result.accuracy = *accuracy;
  return result;
}

}  // namespace neuroprint::core
