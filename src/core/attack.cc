#include "core/attack.h"

#include <cmath>

#include "util/metrics.h"
#include "util/string_util.h"

namespace neuroprint::core {
namespace {

// Screens a group matrix for unusable subjects (any non-finite value in
// the feature column) and resolves the batch against `policy`: fail-fast
// errors on the lowest-index bad subject, skip/quorum record the drops in
// `report` (stage = `stage`) and return the surviving column indices.
Result<std::vector<std::size_t>> ScreenSubjects(
    const connectome::GroupMatrix& matrix, const FailurePolicy& policy,
    const char* stage, BatchReport* report) {
  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  report->attempted = matrix.num_subjects();

  const linalg::Matrix& data = matrix.data();
  std::vector<std::size_t> survivors;
  survivors.reserve(matrix.num_subjects());
  for (std::size_t j = 0; j < matrix.num_subjects(); ++j) {
    bool finite = true;
    for (std::size_t i = 0; i < matrix.num_features() && finite; ++i) {
      finite = std::isfinite(data(i, j));
    }
    if (finite) {
      survivors.push_back(j);
      continue;
    }
    BatchItemReport item;
    item.index = j;
    item.id = matrix.subject_ids()[j];
    item.stage = stage;
    item.status = Status::CorruptData(StrFormat(
        "subject %s has non-finite feature values", item.id.c_str()));
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }
  return survivors;
}

}  // namespace

Result<DeanonymizationAttack> DeanonymizationAttack::Fit(
    const connectome::GroupMatrix& known, const AttackOptions& options,
    BatchReport* report) {
  trace::ScopedEnable trace_enable(options.trace.enabled);
  fault::ScopedSchedule fault_schedule(options.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.fit");
  NP_FAULT_POINT("attack.fit");
  if (options.num_features == 0) {
    return Status::InvalidArgument("AttackOptions: num_features must be > 0");
  }
  if (known.num_subjects() < 2) {
    return Status::InvalidArgument(
        "DeanonymizationAttack: need at least 2 known subjects");
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(survivors,
                      ScreenSubjects(known, options.failure_policy,
                                     "fit_screen", report));
  connectome::GroupMatrix screened_known;
  const connectome::GroupMatrix* fit_known = &known;
  if (survivors.size() < known.num_subjects()) {
    if (survivors.size() < 2) {
      return Status::FailedPrecondition(
          "DeanonymizationAttack: fewer than 2 usable known subjects");
    }
    NP_ASSIGN_OR_RETURN(screened_known, known.RestrictToSubjects(survivors));
    fit_known = &screened_known;
  }
  // The leverage stage inherits the attack-wide thread knob unless its own
  // is set (AttackOptions{.leverage = {.sketch = true}} runs the whole fit
  // on the randomized sketch).
  LeverageOptions leverage = options.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options.parallel;
  }
  auto scores = ComputeLeverageScores(fit_known->data(), leverage);
  if (!scores.ok()) return scores.status();

  DeanonymizationAttack attack;
  attack.leverage_scores_ = std::move(scores).value();
  attack.selected_features_ =
      TopKIndices(attack.leverage_scores_, options.num_features);
  if (attack.selected_features_.size() < 2) {
    return Status::FailedPrecondition(
        "DeanonymizationAttack: fewer than 2 usable features");
  }
  NP_TRACE_SCOPE("attack.fit.restrict");
  auto reduced = fit_known->RestrictToFeatures(attack.selected_features_);
  if (!reduced.ok()) return reduced.status();
  attack.reduced_known_ = std::move(reduced).value();
  attack.full_feature_count_ = known.num_features();
  attack.parallel_ = options.parallel;
  attack.trace_ = options.trace;
  attack.failure_policy_ = options.failure_policy;
  attack.fault_ = options.fault;
  metrics::Count("attack.fits", 1);
  metrics::SetGauge("attack.selected_features",
                    static_cast<double>(attack.selected_features_.size()));
  return attack;
}

Result<AttackResult> DeanonymizationAttack::Identify(
    const connectome::GroupMatrix& anonymous, BatchReport* report) const {
  trace::ScopedEnable trace_enable(trace_.enabled);
  fault::ScopedSchedule fault_schedule(fault_.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("attack.identify");
  NP_FAULT_POINT("attack.identify");
  if (anonymous.num_subjects() == 0) {
    return Status::InvalidArgument(
        "Identify: anonymous dataset has no subjects");
  }
  if (anonymous.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Identify: anonymous dataset has %zu features, attack was fitted "
        "on %zu — datasets must share a parcellation",
        anonymous.num_features(), full_feature_count_));
  }
  std::vector<std::size_t> survivors;
  NP_ASSIGN_OR_RETURN(survivors, ScreenSubjects(anonymous, failure_policy_,
                                                "identify_screen", report));
  connectome::GroupMatrix screened;
  const connectome::GroupMatrix* target = &anonymous;
  if (survivors.size() < anonymous.num_subjects()) {
    NP_ASSIGN_OR_RETURN(screened, anonymous.RestrictToSubjects(survivors));
    target = &screened;
  }
  auto reduced = target->RestrictToFeatures(selected_features_);
  if (!reduced.ok()) return reduced.status();
  metrics::Count("attack.identifies", 1);
  metrics::SetGauge("attack.identify_subjects",
                    static_cast<double>(target->num_subjects()));

  AttackResult result;
  {
    NP_TRACE_SCOPE("attack.identify.similarity");
    auto similarity = SimilarityMatrix(reduced_known_, *reduced, parallel_);
    if (!similarity.ok()) return similarity.status();
    result.similarity = std::move(similarity).value();
  }
  {
    NP_TRACE_SCOPE("attack.identify.argmax");
    result.predicted_index = ArgmaxMatch(result.similarity, parallel_);
  }

  result.predicted_ids.reserve(result.predicted_index.size());
  for (std::size_t idx : result.predicted_index) {
    result.predicted_ids.push_back(reduced_known_.subject_ids()[idx]);
  }
  auto accuracy =
      IdentificationAccuracy(result.predicted_index,
                             reduced_known_.subject_ids(),
                             target->subject_ids());
  if (!accuracy.ok()) return accuracy.status();
  result.accuracy = *accuracy;
  return result;
}

}  // namespace neuroprint::core
