#include "core/defense.h"

#include <cmath>

#include "core/leverage.h"
#include "linalg/vector_ops.h"

namespace neuroprint::core {

Result<SignatureDefense> SignatureDefense::Fit(
    const connectome::GroupMatrix& reference, const DefenseOptions& options) {
  if (options.num_edges == 0) {
    return Status::InvalidArgument("DefenseOptions: num_edges must be > 0");
  }
  if (options.noise_scale < 0.0) {
    return Status::InvalidArgument("DefenseOptions: negative noise_scale");
  }
  auto scores = ComputeLeverageScores(reference.data());
  if (!scores.ok()) return scores.status();

  SignatureDefense defense;
  defense.target_edges_ = TopKIndices(*scores, options.num_edges);
  defense.options_ = options;
  return defense;
}

Result<connectome::GroupMatrix> SignatureDefense::Apply(
    const connectome::GroupMatrix& data) const {
  for (std::size_t edge : target_edges_) {
    if (edge >= data.num_features()) {
      return Status::InvalidArgument(
          "SignatureDefense::Apply: data has a smaller feature space than "
          "the defense was fitted on");
    }
  }
  connectome::GroupMatrix defended = data;
  linalg::Matrix& m = defended.mutable_data();
  const std::size_t subjects = m.cols();
  Rng rng(options_.seed);

  for (std::size_t edge : target_edges_) {
    double* row = m.RowPtr(edge);
    // Across-subject mean and deviation of this edge.
    double mean = 0.0;
    for (std::size_t j = 0; j < subjects; ++j) mean += row[j];
    mean /= static_cast<double>(subjects);
    double var = 0.0;
    for (std::size_t j = 0; j < subjects; ++j) {
      var += (row[j] - mean) * (row[j] - mean);
    }
    const double sd =
        subjects > 1 ? std::sqrt(var / static_cast<double>(subjects - 1)) : 0.0;

    switch (options_.mode) {
      case DefenseMode::kGaussianNoise: {
        for (std::size_t j = 0; j < subjects; ++j) {
          row[j] += rng.Gaussian(0.0, options_.noise_scale * sd);
        }
        break;
      }
      case DefenseMode::kMeanSubstitute: {
        for (std::size_t j = 0; j < subjects; ++j) row[j] = mean;
        break;
      }
      case DefenseMode::kShuffle: {
        linalg::Vector values(row, row + subjects);
        rng.Shuffle(values);
        for (std::size_t j = 0; j < subjects; ++j) row[j] = values[j];
        break;
      }
    }
  }
  return defended;
}

Result<DefenseEvaluation> EvaluateDefense(
    const connectome::GroupMatrix& known,
    const connectome::GroupMatrix& release, const DefenseOptions& options,
    const AttackOptions& attack_options) {
  if (known.num_features() != release.num_features()) {
    return Status::InvalidArgument("EvaluateDefense: feature-space mismatch");
  }

  DefenseEvaluation eval;

  // Baseline: no defense.
  auto attack = DeanonymizationAttack::Fit(known, attack_options);
  if (!attack.ok()) return attack.status();
  auto undefended = attack->Identify(release);
  if (!undefended.ok()) return undefended.status();
  eval.accuracy_undefended = undefended->accuracy;

  // Defend the release. The defender picks edges from the release itself
  // (they do not need the attacker's dataset).
  auto defense = SignatureDefense::Fit(release, options);
  if (!defense.ok()) return defense.status();
  auto defended = defense->Apply(release);
  if (!defended.ok()) return defended.status();

  // Static attacker: same attack, defended release.
  auto static_result = attack->Identify(*defended);
  if (!static_result.ok()) return static_result.status();
  eval.accuracy_static_attacker = static_result->accuracy;

  // Adaptive attacker: re-fits feature selection on the defended release
  // (the identified dataset stays clean — the attacker owns it).
  {
    auto adaptive_features =
        ComputeLeverageScores(defended->data());
    if (!adaptive_features.ok()) return adaptive_features.status();
    const auto features =
        TopKIndices(*adaptive_features, attack_options.num_features);
    auto reduced_known = known.RestrictToFeatures(features);
    auto reduced_release = defended->RestrictToFeatures(features);
    if (!reduced_known.ok()) return reduced_known.status();
    if (!reduced_release.ok()) return reduced_release.status();
    auto similarity = SimilarityMatrix(*reduced_known, *reduced_release);
    if (!similarity.ok()) return similarity.status();
    auto accuracy = IdentificationAccuracy(ArgmaxMatch(*similarity),
                                           reduced_known->subject_ids(),
                                           reduced_release->subject_ids());
    if (!accuracy.ok()) return accuracy.status();
    eval.accuracy_adaptive_attacker = *accuracy;
  }

  // Distortion and coverage.
  const double release_norm = release.data().FrobeniusNorm();
  eval.distortion =
      release_norm > 0.0
          ? (defended->data() - release.data()).FrobeniusNorm() / release_norm
          : 0.0;
  eval.untouched_fraction =
      1.0 - static_cast<double>(defense->target_edges().size()) /
                static_cast<double>(release.num_features());
  return eval;
}


Result<double> GroupContrastPreservation(
    const connectome::GroupMatrix& release,
    const connectome::GroupMatrix& defended,
    const std::vector<int>& group_of) {
  if (release.num_features() != defended.num_features() ||
      release.num_subjects() != defended.num_subjects()) {
    return Status::InvalidArgument(
        "GroupContrastPreservation: release/defended shape mismatch");
  }
  if (group_of.size() != release.num_subjects()) {
    return Status::InvalidArgument(
        "GroupContrastPreservation: one group label per subject required");
  }
  std::size_t n0 = 0, n1 = 0;
  for (int g : group_of) {
    if (g == 0) {
      ++n0;
    } else if (g == 1) {
      ++n1;
    } else {
      return Status::InvalidArgument(
          "GroupContrastPreservation: group labels must be 0 or 1");
    }
  }
  if (n0 == 0 || n1 == 0) {
    return Status::InvalidArgument(
        "GroupContrastPreservation: both groups must be non-empty");
  }

  auto contrast = [&](const connectome::GroupMatrix& g) {
    linalg::Vector diff(g.num_features(), 0.0);
    for (std::size_t e = 0; e < g.num_features(); ++e) {
      double mean0 = 0.0, mean1 = 0.0;
      const double* row = g.data().RowPtr(e);
      for (std::size_t j = 0; j < g.num_subjects(); ++j) {
        (group_of[j] == 0 ? mean0 : mean1) += row[j];
      }
      diff[e] = mean1 / static_cast<double>(n1) -
                mean0 / static_cast<double>(n0);
    }
    return diff;
  };
  return linalg::PearsonCorrelation(contrast(release), contrast(defended));
}

}  // namespace neuroprint::core
