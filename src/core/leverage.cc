#include "core/leverage.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/eig_sym.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace neuroprint::core {
namespace {

// Squared row norms over the leading k columns of u.
linalg::Vector RowSquaredNorms(const linalg::Matrix& u, std::size_t k) {
  linalg::Vector scores(u.rows(), 0.0);
  for (std::size_t i = 0; i < u.rows(); ++i) {
    const double* row = u.RowPtr(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += row[j] * row[j];
    scores[i] = sum;
  }
  return scores;
}

// Sketch path: leverage scores against the randomized rank-k dominant
// subspace. The scores are approximate but the top-t ordering they induce
// matches the exact one almost everywhere on decaying spectra, which is
// all the principal-features construction consumes.
Result<linalg::Vector> LeverageViaSketch(const linalg::Matrix& a,
                                         const LeverageOptions& options) {
  linalg::RandomizedSvdOptions ropts;
  std::size_t target = options.sketch_rank;
  if (target == 0) {
    target = options.rank != 0 ? options.rank : std::max<std::size_t>(
                                                    1, a.cols() / 2);
  }
  ropts.rank = std::min(target, a.cols());
  ropts.oversample = options.sketch_oversample;
  ropts.power_iterations = options.sketch_power_iterations;
  ropts.seed = options.sketch_seed;
  ropts.parallel = options.parallel;
  auto rsvd = linalg::RandomizedSvd(a, ropts);
  if (!rsvd.ok()) return rsvd.status();

  std::size_t k = rsvd->Rank(1e-12);
  if (options.rank > 0) k = std::min(k, options.rank);
  if (k == 0) {
    return Status::FailedPrecondition(
        "ComputeLeverageScores: matrix is numerically zero");
  }
  metrics::SetGauge("leverage.rank", static_cast<double>(k));
  metrics::SetGauge("leverage.sketch_rank", static_cast<double>(ropts.rank));
  return RowSquaredNorms(rsvd->u, k);
}

// The shared core of the in-RAM and streamed Gram fast paths: A = U S V^T
// implies A^T A = V S^2 V^T, so the scaled projection basis V diag(1/sigma)
// over the leading k columns maps A onto U. Consumes the Gram by value
// (the ridge retry mutates it).
Result<linalg::Matrix> LeverageBasisFromGram(linalg::Matrix gram,
                                             const LeverageOptions& options) {
  const std::size_t n = gram.rows();
  auto eig = linalg::EigSym(gram);
  if (!eig.ok()) {
    // Rank-deficient / non-converged Gram: retry once with a tiny ridge
    // (relative to the largest diagonal entry) before giving up and
    // letting the caller fall back to the exact SVD. The ridge only
    // perturbs the near-null directions the rank cutoff below discards.
    double max_diag = 0.0;
    for (std::size_t i = 0; i < gram.rows(); ++i) {
      max_diag = std::max(max_diag, std::abs(gram(i, i)));
    }
    if (!(max_diag > 0.0) || !std::isfinite(max_diag)) return eig.status();
    const double ridge = 1e-12 * max_diag;
    for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
    eig = linalg::EigSym(gram);
    if (!eig.ok()) return eig.status();
    metrics::Count("leverage.gram_ridge_retries", 1);
    if (options.diagnostics != nullptr) {
      options.diagnostics->gram_ridge_retried = true;
    }
  }
  const linalg::Vector& eigenvalues = eig->eigenvalues;
  if (eigenvalues.empty() || eigenvalues[0] <= 0.0) {
    return Status::FailedPrecondition(
        "ComputeLeverageScores: matrix is numerically zero");
  }
  // Rank cutoff: eigenvalues of A^T A are squared singular values, so the
  // relative tolerance is squared as well.
  const double cutoff = 1e-24 * eigenvalues[0];
  std::size_t k = 0;
  while (k < eigenvalues.size() && eigenvalues[k] > cutoff) ++k;
  if (options.rank > 0) k = std::min(k, options.rank);

  // Scaled projection basis: V diag(1/sigma) over the leading k columns.
  linalg::Matrix basis(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    const double inv_sigma = 1.0 / std::sqrt(eigenvalues[j]);
    for (std::size_t i = 0; i < n; ++i) {
      basis(i, j) = eig->eigenvectors(i, j) * inv_sigma;
    }
  }
  metrics::SetGauge("leverage.rank", static_cast<double>(k));
  return basis;
}

// Gram-matrix fast path: costs two m*n^2 gemm-like passes plus an n x n
// eigendecomposition instead of an m x n SVD.
Result<linalg::Vector> LeverageViaGram(const linalg::Matrix& a,
                                       const LeverageOptions& options) {
  auto basis =
      LeverageBasisFromGram(linalg::Gram(a, options.parallel), options);
  if (!basis.ok()) return basis.status();
  const linalg::Matrix u = linalg::MatMul(a, *basis, options.parallel);
  return RowSquaredNorms(u, basis->cols());
}

}  // namespace

Result<linalg::Vector> ComputeLeverageScores(const linalg::Matrix& a,
                                             const LeverageOptions& options) {
  NP_TRACE_SCOPE("leverage.compute");
  metrics::Count("leverage.calls", 1);
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("ComputeLeverageScores: empty matrix");
  }
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument(
        "ComputeLeverageScores: expects a tall features-by-subjects matrix");
  }
  if (options.diagnostics != nullptr) *options.diagnostics = {};
  if (options.sketch) {
    auto sketched = LeverageViaSketch(a, options);
    if (sketched.ok() && options.diagnostics != nullptr) {
      options.diagnostics->used_sketch = true;
    }
    if (sketched.ok()) {
      metrics::Count("leverage.path.sketch", 1);
      return sketched;
    }
    // Fall through to the exact paths on numerical failure.
  }
  if (options.allow_gram_fast_path && a.rows() >= 4 * a.cols()) {
    auto fast = LeverageViaGram(a, options);
    if (fast.ok()) {
      if (options.diagnostics != nullptr) {
        options.diagnostics->used_gram_fast_path = true;
      }
      metrics::Count("leverage.path.gram", 1);
      return fast;
    }
    // Fall through to the exact path on numerical failure.
  }
  linalg::SvdOptions svd_options;
  svd_options.parallel = options.parallel;
  auto svd = linalg::Svd(a, svd_options);
  if (!svd.ok()) return svd.status();
  if (options.diagnostics != nullptr) {
    options.diagnostics->svd_qr_preconditioned = svd->qr_preconditioned;
  }

  // Columns of U beyond the numerical rank correspond to zero singular
  // values; their directions are arbitrary and must not contribute.
  std::size_t k = svd->Rank(1e-12);
  if (options.rank > 0) k = std::min(k, options.rank);
  if (k == 0) {
    return Status::FailedPrecondition(
        "ComputeLeverageScores: matrix is numerically zero");
  }
  metrics::Count("leverage.path.svd", 1);
  metrics::SetGauge("leverage.rank", static_cast<double>(k));
  return RowSquaredNorms(svd->u, k);
}

Result<linalg::Vector> ComputeLeverageScoresStreamed(
    const connectome::MatrixStore& store, const LeverageOptions& options,
    const connectome::StreamOptions& stream) {
  NP_TRACE_SCOPE("leverage.compute_streamed");
  metrics::Count("leverage.streamed_calls", 1);
  const std::size_t m = store.num_features();
  const std::size_t n = store.num_subjects();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("ComputeLeverageScores: empty matrix");
  }
  if (m < n) {
    return Status::InvalidArgument(
        "ComputeLeverageScores: expects a tall features-by-subjects matrix");
  }
  if (options.diagnostics != nullptr) *options.diagnostics = {};
  if (!options.sketch && options.allow_gram_fast_path && m >= 4 * n) {
    connectome::StreamOptions windows = stream;
    windows.parallel = options.parallel;
    auto gram = connectome::StreamedGram(store, windows);
    if (!gram.ok()) return gram.status();
    auto basis = LeverageBasisFromGram(std::move(*gram), options);
    if (basis.ok()) {
      // Row-tiled projection: each tile's MatMul is a full-width GEMM, so
      // every score matches the in-RAM RowSquaredNorms(MatMul(a, basis))
      // bit for bit — MatMul row blocks are independent by construction.
      const std::size_t k = basis->cols();
      const std::size_t tile = connectome::DeriveRowTile(m, n, stream.row_tile);
      linalg::Vector scores(m, 0.0);
      linalg::Matrix slab;
      for (std::size_t r0 = 0; r0 < m; r0 += tile) {
        const std::size_t tr = std::min(tile, m - r0);
        NP_RETURN_IF_ERROR(store.ReadTile(r0, tr, 0, n, &slab));
        const linalg::Matrix u =
            linalg::MatMul(slab, *basis, options.parallel);
        for (std::size_t i = 0; i < tr; ++i) {
          const double* row = u.RowPtr(i);
          double sum = 0.0;
          for (std::size_t j = 0; j < k; ++j) sum += row[j] * row[j];
          scores[r0 + i] = sum;
        }
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->used_gram_fast_path = true;
      }
      metrics::Count("leverage.calls", 1);
      metrics::Count("leverage.path.gram", 1);
      return scores;
    }
    // Numerical failure: materialize below and let the in-RAM call retry
    // the identical Gram (it fails the same way — the streamed Gram is
    // bitwise-equal) and fall through to its exact-SVD path.
  }
  auto materialized = connectome::MaterializeStore(store);
  if (!materialized.ok()) return materialized.status();
  return ComputeLeverageScores(materialized->data(), options);
}

std::vector<std::size_t> TopKIndices(const linalg::Vector& scores,
                                     std::size_t t) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t keep = std::min(t, scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(keep);
  return order;
}

Result<std::vector<std::size_t>> TopLeverageFeatures(
    const linalg::Matrix& a, std::size_t t, const LeverageOptions& options) {
  if (t == 0) {
    return Status::InvalidArgument("TopLeverageFeatures: t must be positive");
  }
  auto scores = ComputeLeverageScores(a, options);
  if (!scores.ok()) return scores.status();
  return TopKIndices(*scores, t);
}

}  // namespace neuroprint::core
