#include "core/tsne.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/random.h"
#include "util/string_util.h"

namespace neuroprint::core {
namespace {

constexpr double kMinProbability = 1e-12;

// Squared Euclidean distances between rows of `points` via the Gram trick:
// ||x_i - x_j||^2 = G_ii + G_jj - 2 G_ij. One gemm instead of n^2 loops
// over the (possibly 64620-long) feature axis. The gemm row-blocks run on
// the shared pool (NEUROPRINT_THREADS); the iteration loops stay serial.
linalg::Matrix PairwiseSquaredDistances(const linalg::Matrix& points) {
  const linalg::Matrix gram = linalg::MatMulT(points, points);
  const std::size_t n = points.rows();
  linalg::Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d2(i, j) = std::max(0.0, gram(i, i) + gram(j, j) - 2.0 * gram(i, j));
    }
  }
  return d2;
}

// Conditional probabilities p_{j|i} for one row given precision beta
// (beta = 1 / (2 sigma^2)); returns the Shannon entropy (nats). Distances
// are shifted by the row minimum before exponentiating — softmax shift
// invariance — so large absolute distances cannot underflow every term.
double RowConditional(const linalg::Matrix& d2, std::size_t i, double beta,
                      linalg::Vector& row) {
  const std::size_t n = d2.rows();
  double min_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) min_d2 = std::min(min_d2, d2(i, j));
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    row[j] = j == i ? 0.0 : std::exp(-beta * (d2(i, j) - min_d2));
    sum += row[j];
  }
  double entropy = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    row[j] /= sum;
    if (row[j] > kMinProbability) entropy -= row[j] * std::log(row[j]);
  }
  return entropy;
}

}  // namespace

Result<linalg::Matrix> TsneJointProbabilities(
    const linalg::Matrix& squared_distances, double perplexity) {
  const std::size_t n = squared_distances.rows();
  if (squared_distances.cols() != n) {
    return Status::InvalidArgument(
        "TsneJointProbabilities: distance matrix not square");
  }
  if (n < 4) {
    return Status::InvalidArgument("TsneJointProbabilities: need >= 4 points");
  }
  if (perplexity < 1.0 ||
      3.0 * perplexity > static_cast<double>(n - 1)) {
    return Status::InvalidArgument(StrFormat(
        "TsneJointProbabilities: perplexity %.1f unusable for %zu points",
        perplexity, n));
  }

  const double target_entropy = std::log(perplexity);
  linalg::Matrix conditional(n, n);
  linalg::Vector row(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // Bisection on beta to match the target entropy. Entropy decreases
    // monotonically in beta.
    double beta = 1.0;
    double beta_min = 0.0;
    double beta_max = std::numeric_limits<double>::infinity();
    double entropy = RowConditional(squared_distances, i, beta, row);
    for (int iter = 0; iter < 64 && std::fabs(entropy - target_entropy) > 1e-7;
         ++iter) {
      if (entropy > target_entropy) {
        beta_min = beta;
        beta = std::isinf(beta_max) ? beta * 2.0 : 0.5 * (beta + beta_max);
      } else {
        beta_max = beta;
        beta = 0.5 * (beta + beta_min);
      }
      entropy = RowConditional(squared_distances, i, beta, row);
    }
    conditional.SetRow(i, row);
  }

  // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored away from zero so
  // outliers keep influence on the cost (Section 3.1.3 of the paper).
  linalg::Matrix joint(n, n);
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      joint(i, j) =
          std::max((conditional(i, j) + conditional(j, i)) * inv_2n,
                   kMinProbability);
    }
  }
  return joint;
}

Result<TsneResult> TsneEmbedFromSquaredDistances(
    const linalg::Matrix& squared_distances, const TsneOptions& options) {
  if (options.output_dims == 0) {
    return Status::InvalidArgument("TsneOptions: output_dims must be > 0");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("TsneOptions: max_iterations must be > 0");
  }
  if (!squared_distances.AllFinite()) {
    return Status::InvalidArgument("TsneEmbed: non-finite distances");
  }
  auto joint = TsneJointProbabilities(squared_distances, options.perplexity);
  if (!joint.ok()) return joint.status();
  linalg::Matrix p = std::move(joint).value();
  const std::size_t n = p.rows();
  const std::size_t dims = options.output_dims;

  // Early exaggeration.
  p *= options.early_exaggeration;

  Rng rng(options.seed);
  linalg::Matrix y(n, dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dims; ++d) y(i, d) = rng.Gaussian(0.0, 1e-2);
  }
  linalg::Matrix velocity(n, dims);
  linalg::Matrix gains(n, dims, 1.0);
  linalg::Matrix gradient(n, dims);
  linalg::Matrix weights(n, n);  // (1 + ||y_i - y_j||^2)^{-1}.

  double kl = 0.0;
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (iteration == options.exaggeration_iterations) {
      p *= 1.0 / options.early_exaggeration;
    }

    // Student-t kernel and its normalizer.
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weights(i, i) = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          const double diff = y(i, d) - y(j, d);
          d2 += diff * diff;
        }
        const double w = 1.0 / (1.0 + d2);
        weights(i, j) = w;
        weights(j, i) = w;
        weight_sum += 2.0 * w;
      }
    }
    const double inv_weight_sum = weight_sum > 0.0 ? 1.0 / weight_sum : 0.0;

    // Gradient (Eq. 12): 4 sum_j (p_ij - q_ij) w_ij (y_i - y_j).
    gradient.Fill(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(weights(i, j) * inv_weight_sum,
                                  kMinProbability);
        const double coeff = 4.0 * (p(i, j) - q) * weights(i, j);
        for (std::size_t d = 0; d < dims; ++d) {
          gradient(i, d) += coeff * (y(i, d) - y(j, d));
        }
      }
    }

    // Momentum update with per-parameter gains.
    const double momentum = iteration < options.momentum_switch_iteration
                                ? options.initial_momentum
                                : options.final_momentum;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dims; ++d) {
        const bool same_sign =
            (gradient(i, d) > 0.0) == (velocity(i, d) > 0.0);
        gains(i, d) = same_sign ? std::max(0.01, gains(i, d) * 0.8)
                                : gains(i, d) + 0.2;
        velocity(i, d) = momentum * velocity(i, d) -
                         options.learning_rate * gains(i, d) * gradient(i, d);
        y(i, d) += velocity(i, d);
      }
    }

    // Keep the embedding centred.
    for (std::size_t d = 0; d < dims; ++d) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, d);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y(i, d) -= mean;
    }
  }

  // Final KL(P || Q) on the un-exaggerated P.
  {
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
          const double diff = y(i, d) - y(j, d);
          d2 += diff * diff;
        }
        const double w = 1.0 / (1.0 + d2);
        weights(i, j) = w;
        weights(j, i) = w;
        weight_sum += 2.0 * w;
      }
    }
    kl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q =
            std::max(weights(i, j) / weight_sum, kMinProbability);
        kl += p(i, j) * std::log(p(i, j) / q);
      }
    }
  }

  TsneResult result;
  result.embedding = std::move(y);
  result.kl_divergence = kl;
  result.iterations = iteration;
  return result;
}

Result<TsneResult> TsneEmbed(const linalg::Matrix& points,
                             const TsneOptions& options) {
  if (points.rows() < 4) {
    return Status::InvalidArgument("TsneEmbed: need at least 4 points");
  }
  if (!points.AllFinite()) {
    return Status::InvalidArgument("TsneEmbed: non-finite input");
  }
  return TsneEmbedFromSquaredDistances(PairwiseSquaredDistances(points),
                                       options);
}

}  // namespace neuroprint::core
