// t-distributed Stochastic Neighbor Embedding (the paper's Algorithm 2,
// after van der Maaten & Hinton 2008).
//
// Exact O(n^2) implementation: the paper's experiment embeds 800 scans, a
// size where the exact gradient is both faithful to Algorithm 2 and fast.
// Perplexity calibration uses bisection on the per-point Gaussian
// precision; the optimizer is gradient descent with momentum, early
// exaggeration, and per-parameter gains (the reference implementation's
// additions to the simplified pseudocode).

#ifndef NEUROPRINT_CORE_TSNE_H_
#define NEUROPRINT_CORE_TSNE_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

struct TsneOptions {
  std::size_t output_dims = 2;
  double perplexity = 30.0;
  int max_iterations = 1000;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int exaggeration_iterations = 250;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iteration = 250;
  std::uint64_t seed = 42;
};

struct TsneResult {
  linalg::Matrix embedding;  ///< n x output_dims.
  double kl_divergence = 0.0;  ///< Final KL(P || Q).
  int iterations = 0;
};

/// Embeds the rows of `points` (n x d). Requires n >= 4 and perplexity
/// < (n - 1) / 3 (each point needs enough neighbours to calibrate).
Result<TsneResult> TsneEmbed(const linalg::Matrix& points,
                             const TsneOptions& options = {});

/// Same, starting from a precomputed n x n squared-distance matrix.
Result<TsneResult> TsneEmbedFromSquaredDistances(
    const linalg::Matrix& squared_distances, const TsneOptions& options = {});

/// The symmetric joint probabilities P used by t-SNE (exposed for tests:
/// rows of the conditional matrix must hit the target perplexity).
Result<linalg::Matrix> TsneJointProbabilities(
    const linalg::Matrix& squared_distances, double perplexity);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_TSNE_H_
