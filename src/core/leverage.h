// Leverage scores and the Principal Features Subspace method (the paper's
// Section 3.1.2, following Ravindra et al. 2018).
//
// For a group matrix A (features x subjects, m >> n), the leverage score
// of row i is l_i = ||U_{i,*}||^2 where U spans A's column space (Eq. 5).
// Deterministically keeping the t rows with the largest scores gives the
// principal features subspace — the compact set of connectome edges that
// carries the identity signature.

#ifndef NEUROPRINT_CORE_LEVERAGE_H_
#define NEUROPRINT_CORE_LEVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "connectome/matrix_store.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

/// Which computation actually produced the scores (out-param telemetry for
/// tests and tooling; see LeverageOptions::diagnostics).
struct LeverageDiagnostics {
  /// The Gram-eigendecomposition fast path ran to completion.
  bool used_gram_fast_path = false;
  /// The randomized sketch path ran to completion.
  bool used_sketch = false;
  /// The exact-SVD branch ran and its SVD took the thin-QR preconditioning
  /// fast path (expected for tall group matrices).
  bool svd_qr_preconditioned = false;
  /// The Gram eigendecomposition failed on the raw Gram (rank-deficient /
  /// non-converged) and succeeded on the ridge-jittered retry.
  bool gram_ridge_retried = false;
};

struct LeverageOptions {
  /// Number of left singular vectors to use. 0 means all of them (the full
  /// column space, the paper's choice); k < n restricts to the rank-k
  /// dominant subspace.
  std::size_t rank = 0;
  /// For tall matrices (rows >= 4 * cols) leverage scores are computed via
  /// the Gram matrix A^T A: eigendecompose the small n x n Gram, then
  /// l_i = || (A V)_i diag(1/sigma) ||^2. An order of magnitude faster than
  /// the full SVD at the paper's 64620 x 100 shape, exact up to squaring
  /// the condition number (validated against the SVD path in tests).
  /// Disable to force the SVD path.
  bool allow_gram_fast_path = true;
  /// Randomized sketch mode: approximate the dominant column space with a
  /// seeded Halko range sketch (linalg::RandomizedSvd) and score rows
  /// against it. All GEMM-shaped work — several times faster than the
  /// exact decompositions at the paper's shape — and deterministic for a
  /// fixed sketch_seed. The top-t feature sets it selects overlap the
  /// exact ones >= 95% on simulated group matrices (asserted in tests).
  /// Takes precedence over the Gram fast path when enabled.
  bool sketch = false;
  /// Sketch subspace rank. 0 picks `rank` if set, else cols/2 (enough to
  /// dominate the leverage ordering on decaying spectra at half the
  /// passes of a full-width sketch).
  std::size_t sketch_rank = 0;
  /// Oversampling columns added to sketch_rank (Halko's p).
  std::size_t sketch_oversample = 8;
  /// Power iterations for the sketch (q); see RandomizedSvdOptions. The
  /// default is 0: leverage scoring wants breadth of column-space capture
  /// rather than spectral sharpening, and a plain Gaussian range probe
  /// already lands >= 95% top-t overlap at half the passes over A. Raise
  /// for strongly decaying spectra where the dominant subspace matters.
  int sketch_power_iterations = 0;
  /// Seed for the sketch's Gaussian test matrix.
  std::uint64_t sketch_seed = 0x6c65766572616765ULL;
  /// Thread knob for the underlying kernels (never changes results).
  ParallelContext parallel;
  /// Optional telemetry sink; filled by ComputeLeverageScores when set.
  LeverageDiagnostics* diagnostics = nullptr;
};

/// Leverage scores of the rows of `a` (length a.rows(); each in [0, 1],
/// summing to min(rank, numerical rank)).
Result<linalg::Vector> ComputeLeverageScores(const linalg::Matrix& a,
                                             const LeverageOptions& options = {});

/// Out-of-core leverage scores: bitwise-identical to ComputeLeverageScores
/// of the materialized store in every configuration. When the Gram fast
/// path applies (tall shape, enabled, not sketching) the whole computation
/// streams — StreamedGram over column windows, then row-tiled projection —
/// holding only one slab plus the n x n Gram resident. Other shapes /
/// modes materialize the store and defer to the in-RAM implementation.
/// `stream.parallel` is ignored; `options.parallel` drives every kernel,
/// as in the in-RAM call.
Result<linalg::Vector> ComputeLeverageScoresStreamed(
    const connectome::MatrixStore& store, const LeverageOptions& options = {},
    const connectome::StreamOptions& stream = {});

/// Indices of the `t` rows with the largest leverage scores, in descending
/// score order (ties broken by index for determinism).
Result<std::vector<std::size_t>> TopLeverageFeatures(
    const linalg::Matrix& a, std::size_t t,
    const LeverageOptions& options = {});

/// Same, given precomputed scores.
std::vector<std::size_t> TopKIndices(const linalg::Vector& scores,
                                     std::size_t t);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_LEVERAGE_H_
