// Leverage scores and the Principal Features Subspace method (the paper's
// Section 3.1.2, following Ravindra et al. 2018).
//
// For a group matrix A (features x subjects, m >> n), the leverage score
// of row i is l_i = ||U_{i,*}||^2 where U spans A's column space (Eq. 5).
// Deterministically keeping the t rows with the largest scores gives the
// principal features subspace — the compact set of connectome edges that
// carries the identity signature.

#ifndef NEUROPRINT_CORE_LEVERAGE_H_
#define NEUROPRINT_CORE_LEVERAGE_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

struct LeverageOptions {
  /// Number of left singular vectors to use. 0 means all of them (the full
  /// column space, the paper's choice); k < n restricts to the rank-k
  /// dominant subspace.
  std::size_t rank = 0;
  /// For tall matrices (rows >= 4 * cols) leverage scores are computed via
  /// the Gram matrix A^T A: eigendecompose the small n x n Gram, then
  /// l_i = || (A V)_i diag(1/sigma) ||^2. An order of magnitude faster than
  /// the full SVD at the paper's 64620 x 100 shape, exact up to squaring
  /// the condition number (validated against the SVD path in tests).
  /// Disable to force the SVD path.
  bool allow_gram_fast_path = true;
};

/// Leverage scores of the rows of `a` (length a.rows(); each in [0, 1],
/// summing to min(rank, numerical rank)).
Result<linalg::Vector> ComputeLeverageScores(const linalg::Matrix& a,
                                             const LeverageOptions& options = {});

/// Indices of the `t` rows with the largest leverage scores, in descending
/// score order (ties broken by index for determinism).
Result<std::vector<std::size_t>> TopLeverageFeatures(
    const linalg::Matrix& a, std::size_t t,
    const LeverageOptions& options = {});

/// Same, given precomputed scores.
std::vector<std::size_t> TopKIndices(const linalg::Vector& scores,
                                     std::size_t t);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_LEVERAGE_H_
