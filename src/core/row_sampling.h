// The randomized row-sampling meta-algorithm (the paper's Algorithm 1,
// after Drineas, Kannan & Mahoney 2006): draw s rows i.i.d. from a
// distribution P and rescale each picked row by 1/sqrt(s * p_i), so that
// E[A~^T A~] = A^T A. Three distributions are provided — uniform, l2-norm
// (Eq. 1), and leverage (Eq. 3) — plus helpers to measure the sketch
// error the paper's bounds (Eq. 2 / Eq. 4) speak about.

#ifndef NEUROPRINT_CORE_ROW_SAMPLING_H_
#define NEUROPRINT_CORE_ROW_SAMPLING_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace neuroprint::core {

enum class SamplingDistribution {
  kUniform,
  kL2Norm,    ///< p_i proportional to ||A_{i,*}||^2 (Eq. 1).
  kLeverage,  ///< p_i proportional to the leverage score (Eq. 3).
};

/// The sketch plus provenance: which source row each sketch row came from.
struct RowSample {
  linalg::Matrix sketch;             ///< s x n, rescaled rows of A.
  std::vector<std::size_t> indices;  ///< Source row of each sketch row.
  linalg::Vector probabilities;      ///< The distribution P used.
};

/// Builds the sampling distribution for `a` under `dist`. Fails if every
/// weight is zero (e.g. l2 sampling on a zero matrix).
Result<linalg::Vector> SamplingProbabilities(const linalg::Matrix& a,
                                             SamplingDistribution dist);

/// Algorithm 1: samples `s` rows i.i.d. with replacement from P and
/// rescales. Deterministic given the Rng state.
Result<RowSample> SampleRows(const linalg::Matrix& a, std::size_t s,
                             SamplingDistribution dist, Rng& rng);

/// ||A^T A - A~^T A~||_F — the approximation error the Drineas bound
/// (Eq. 2) controls.
double GramApproximationError(const linalg::Matrix& a,
                              const linalg::Matrix& sketch);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_ROW_SAMPLING_H_
