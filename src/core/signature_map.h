// Signature localization (the paper's Section 3.1.2 and Discussion): the
// leverage-selected connectome edges map back to pairs of atlas parcels,
// identifying WHICH brain regions carry the identity signature. The paper
// argues this localization is the actionable output for defenders — it
// says where protective noise must go.
//
// This module aggregates selected edges into per-region importance
// scores and can render them as a NIfTI heat map over an atlas, so the
// localization is inspectable in standard neuroimaging viewers.

#ifndef NEUROPRINT_CORE_SIGNATURE_MAP_H_
#define NEUROPRINT_CORE_SIGNATURE_MAP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "atlas/atlas.h"
#include "image/volume.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

/// Per-region participation in the identity signature.
struct RegionImportance {
  std::size_t region_index = 0;  ///< 0-based (atlas label - 1).
  /// Number of selected edges incident to the region.
  std::size_t edge_count = 0;
  /// Sum of the leverage scores of those edges (halved per endpoint so
  /// the total over regions equals the total selected leverage mass).
  double leverage_mass = 0.0;
};

/// Aggregates selected feature (edge) indices into per-region importance,
/// sorted by descending leverage mass. `leverage_scores` must cover the
/// full feature space the edges index into; `regions` is the atlas region
/// count (features must equal regions*(regions-1)/2).
Result<std::vector<RegionImportance>> ComputeRegionImportance(
    const std::vector<std::size_t>& selected_edges,
    const linalg::Vector& leverage_scores, std::size_t regions);

/// Renders per-region importance as a voxel heat map over the atlas:
/// every voxel of region r gets that region's leverage mass (background
/// voxels get 0). Write with nifti::WriteNifti3D to inspect externally.
Result<image::Volume3D> RenderSignatureMap(
    const std::vector<RegionImportance>& importance,
    const atlas::Atlas& atlas);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_SIGNATURE_MAP_H_
