// Cross-dataset subject matching: Pearson similarity between subjects of
// two (feature-restricted) group matrices, argmax assignment, and the
// accuracy / diagonal-contrast statistics the paper's Figures 1, 2, 5, 7,
// 8, 9 report.

#ifndef NEUROPRINT_CORE_MATCHER_H_
#define NEUROPRINT_CORE_MATCHER_H_

#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

/// Pearson correlation between every subject of `known` and every subject
/// of `anonymous` (rows = known subjects, cols = anonymous subjects).
/// Feature dimensions must match (restrict both to the same features
/// first).
Result<linalg::Matrix> SimilarityMatrix(const connectome::GroupMatrix& known,
                                        const connectome::GroupMatrix& anonymous,
                                        const ParallelContext& ctx = {});

/// For each column (anonymous subject) the row index of the most similar
/// known subject.
std::vector<std::size_t> ArgmaxMatch(const linalg::Matrix& similarity,
                                     const ParallelContext& ctx = {});

/// Fraction of anonymous subjects whose argmax row carries the same
/// subject id. Sizes: predicted.size() == anonymous_ids.size().
Result<double> IdentificationAccuracy(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids);

/// Diagonal-vs-off-diagonal statistics of a similarity matrix whose rows
/// and columns are aligned by subject (Figures 1/2/7/8).
struct SimilarityStats {
  double diagonal_mean = 0.0;
  double off_diagonal_mean = 0.0;
  double diagonal_min = 0.0;
  double off_diagonal_max = 0.0;
  /// diagonal_mean - off_diagonal_mean: the identifiability contrast.
  double contrast = 0.0;
};

Result<SimilarityStats> ComputeSimilarityStats(const linalg::Matrix& similarity);

/// Per-target match confidence: for each column, the gap between the best
/// and second-best row similarity. A small margin flags an unreliable
/// match (useful when reporting attack results on real releases).
/// Requires at least 2 rows. Columns are scanned independently, so the
/// result is identical at any thread count.
Result<linalg::Vector> MatchMargins(const linalg::Matrix& similarity,
                                    const ParallelContext& ctx = {});

/// Rank of the true identity in each anonymous subject's candidate list
/// (1 = best match; standard biometric evaluation). A subject whose true
/// identity is absent from `known_ids` gets rank known_ids.size() + 1.
Result<std::vector<std::size_t>> TrueMatchRanks(
    const linalg::Matrix& similarity,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids);

/// Cumulative match characteristic: entry k-1 is the fraction of
/// anonymous subjects whose true identity ranks within the top k
/// candidates. Entry 0 equals the plain identification accuracy; the
/// curve is non-decreasing. `max_rank` bounds the curve length (clamped
/// to the candidate count).
Result<linalg::Vector> CumulativeMatchCurve(
    const linalg::Matrix& similarity,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids, std::size_t max_rank = 10);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_MATCHER_H_
