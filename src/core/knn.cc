#include "core/knn.h"

#include <algorithm>
#include <map>

namespace neuroprint::core {

Result<std::vector<int>> KnnClassify(const linalg::Matrix& train,
                                     const std::vector<int>& labels,
                                     const linalg::Matrix& queries,
                                     std::size_t k, const ParallelContext& ctx) {
  if (train.rows() == 0 || queries.rows() == 0) {
    return Status::InvalidArgument("KnnClassify: empty input");
  }
  if (labels.size() != train.rows()) {
    return Status::InvalidArgument("KnnClassify: label count mismatch");
  }
  if (train.cols() != queries.cols()) {
    return Status::InvalidArgument("KnnClassify: dimension mismatch");
  }
  if (k == 0) {
    return Status::InvalidArgument("KnnClassify: k must be > 0");
  }
  // A k larger than the gallery degrades to voting over every training
  // point instead of erroring — incremental galleries shrink under
  // removal, and callers holding a fixed k should keep working.
  const std::size_t effective_k = std::min(k, train.rows());

  // Queries are independent; each chunk sorts into its own scratch buffer.
  // partial_sort on (d2, index) pairs is a total order, so the vote — and
  // thus the prediction — is deterministic regardless of threading.
  std::vector<int> predicted(queries.rows());
  ParallelFor(
      ctx, 0, queries.rows(), GrainForWork(train.rows() * train.cols()),
      [&](std::size_t q_lo, std::size_t q_hi) {
        std::vector<std::pair<double, std::size_t>> distances(train.rows());
        for (std::size_t q = q_lo; q < q_hi; ++q) {
          const double* query = queries.RowPtr(q);
          for (std::size_t i = 0; i < train.rows(); ++i) {
            const double* point = train.RowPtr(i);
            double d2 = 0.0;
            for (std::size_t d = 0; d < train.cols(); ++d) {
              const double diff = query[d] - point[d];
              d2 += diff * diff;
            }
            distances[i] = {d2, i};
          }
          // partial_sort on (d2, index) pairs: duplicate distances order by
          // training index, never by iteration or heap order.
          std::partial_sort(
              distances.begin(),
              distances.begin() + static_cast<std::ptrdiff_t>(effective_k),
              distances.end());
          // Majority vote; on ties the label of the nearer neighbour wins
          // because votes are tallied in distance order.
          std::map<int, std::size_t> votes;
          int best_label = labels[distances[0].second];
          std::size_t best_votes = 0;
          for (std::size_t i = 0; i < effective_k; ++i) {
            const int label = labels[distances[i].second];
            const std::size_t count = ++votes[label];
            if (count > best_votes) {
              best_votes = count;
              best_label = label;
            }
          }
          predicted[q] = best_label;
        }
      });
  return predicted;
}

Result<double> ClassificationAccuracy(const std::vector<int>& predicted,
                                      const std::vector<int>& truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    return Status::InvalidArgument("ClassificationAccuracy: size mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

}  // namespace neuroprint::core
