// Task-performance prediction (the paper's Section 3.3.3 / Table 1):
// leverage-score feature selection on the training group matrix, then a
// linear epsilon-SVR from the reduced connectome features to the
// behavioural performance metric, scored as normalized RMSE (percent).

#ifndef NEUROPRINT_CORE_TASK_PERFORMANCE_H_
#define NEUROPRINT_CORE_TASK_PERFORMANCE_H_

#include <vector>

#include "connectome/group_matrix.h"
#include "core/leverage.h"
#include "core/svr.h"
#include "util/status.h"

namespace neuroprint::core {

struct PerformanceRegressionOptions {
  /// More features than the identification attack uses: the behavioural
  /// signal is spread over many task-network edges, and the SVR's
  /// regularization handles the width.
  std::size_t num_features = 1000;
  SvrOptions svr{.cost = 1.0, .epsilon = 0.25, .max_epochs = 2000,
                 .tolerance = 1e-6, .seed = 7};
};

/// A fitted performance model: selected features + SVR coefficients.
class PerformanceRegressor {
 public:
  /// Fits on a training group matrix (features x subjects) and one
  /// performance score per subject.
  static Result<PerformanceRegressor> Fit(
      const connectome::GroupMatrix& train, const linalg::Vector& scores,
      const PerformanceRegressionOptions& options = {});

  /// Predicts the score of every subject in `group` (same full feature
  /// space as training).
  Result<linalg::Vector> Predict(const connectome::GroupMatrix& group) const;

  const std::vector<std::size_t>& selected_features() const {
    return selected_features_;
  }

 private:
  LinearSvr model_;
  std::vector<std::size_t> selected_features_;
  std::size_t full_feature_count_ = 0;
  // Training-set standardization: features are z-scored and the target is
  // centred before the SVR sees them (the SVR's regularized bias would
  // otherwise fight the target's mean level).
  linalg::Vector feature_means_;
  linalg::Vector feature_sds_;
  double score_mean_ = 0.0;
};

/// One train/test evaluation: fit on train, report nRMSE% on both splits
/// (the two columns of Table 1).
struct PerformanceEvaluation {
  double train_nrmse_percent = 0.0;
  double test_nrmse_percent = 0.0;
};

Result<PerformanceEvaluation> EvaluatePerformancePrediction(
    const connectome::GroupMatrix& train, const linalg::Vector& train_scores,
    const connectome::GroupMatrix& test, const linalg::Vector& test_scores,
    const PerformanceRegressionOptions& options = {});

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_TASK_PERFORMANCE_H_
