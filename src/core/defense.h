// Signature-suppression defenses (the paper's Discussion section).
//
// The paper argues that because leverage scores localize the identity
// signature to a small set of connectome edges, a defender can add noise
// exactly there — suppressing re-identification while leaving the rest of
// the connectome (and therefore downstream analyses such as case/control
// contrasts) intact. This module implements that defense and the
// evaluation machinery for the privacy/utility trade-off, including the
// adaptive attacker who re-fits leverage scores on already-defended data.

#ifndef NEUROPRINT_CORE_DEFENSE_H_
#define NEUROPRINT_CORE_DEFENSE_H_

#include <cstdint>
#include <vector>

#include "connectome/group_matrix.h"
#include "core/attack.h"
#include "util/random.h"
#include "util/status.h"

namespace neuroprint::core {

/// How targeted edges are suppressed.
enum class DefenseMode {
  /// Add Gaussian noise scaled to each edge's across-subject deviation.
  kGaussianNoise,
  /// Replace the edge with its across-subject mean (removes all
  /// subject-specific variation on that edge).
  kMeanSubstitute,
  /// Permute the edge's values across subjects (marginal distribution
  /// preserved exactly; linkage destroyed).
  kShuffle,
};

struct DefenseOptions {
  /// Number of top-leverage edges to suppress.
  std::size_t num_edges = 200;
  /// Noise magnitude in units of the edge's across-subject standard
  /// deviation (kGaussianNoise only).
  double noise_scale = 2.0;
  DefenseMode mode = DefenseMode::kGaussianNoise;
  std::uint64_t seed = 1234;
};

/// A fitted defense: the edge set to suppress, chosen by leverage score
/// on a reference dataset the defender holds (e.g. the dataset being
/// released).
class SignatureDefense {
 public:
  /// Selects the num_edges highest-leverage edges of `reference`.
  static Result<SignatureDefense> Fit(const connectome::GroupMatrix& reference,
                                      const DefenseOptions& options = {});

  const std::vector<std::size_t>& target_edges() const { return target_edges_; }

  /// Returns a defended copy of `data` with the target edges suppressed.
  /// The defense is randomized per call (fresh draws from the seed).
  Result<connectome::GroupMatrix> Apply(
      const connectome::GroupMatrix& data) const;

 private:
  std::vector<std::size_t> target_edges_;
  DefenseOptions options_;
};

/// Privacy/utility evaluation of a defense configuration.
struct DefenseEvaluation {
  /// Attack accuracy with no defense (baseline).
  double accuracy_undefended = 0.0;
  /// Accuracy of the ORIGINAL attack (fitted on clean data) against the
  /// defended release.
  double accuracy_static_attacker = 0.0;
  /// Accuracy of an attacker who re-fits leverage selection on defended
  /// data (the stronger, adaptive threat model).
  double accuracy_adaptive_attacker = 0.0;
  /// Relative Frobenius distortion of the feature matrix: how much of the
  /// data the defense changed.
  double distortion = 0.0;
  /// Fraction of edges untouched by the defense.
  double untouched_fraction = 0.0;
};

/// Runs the full evaluation: `known` is the attacker's identified
/// dataset; `release` is the dataset being published, which the defense
/// is applied to. Both must share a feature space and subject alignment.
Result<DefenseEvaluation> EvaluateDefense(
    const connectome::GroupMatrix& known,
    const connectome::GroupMatrix& release, const DefenseOptions& options,
    const AttackOptions& attack_options = {});

/// Downstream-utility check (the Discussion's open question: does the
/// noise damage the analyses the data was released for?). Computes the
/// per-edge mean difference between two subject groups (e.g. cases vs
/// controls) before and after the defense and returns the Pearson
/// correlation of the two contrast maps — 1.0 means the group analysis is
/// untouched. `group_of[j]` assigns release subject j to group 0 or 1;
/// both groups must be non-empty.
Result<double> GroupContrastPreservation(
    const connectome::GroupMatrix& release,
    const connectome::GroupMatrix& defended,
    const std::vector<int>& group_of);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_DEFENSE_H_
