// Linear epsilon-insensitive support vector regression, trained by dual
// coordinate descent (Ho & Lin 2012, the LIBLINEAR L1-loss SVR solver).
// The paper's Section 3.3.3 regresses task-performance metrics on the
// leverage-selected connectome features with an SVM regressor; for the
// linear kernel this solver is exact and dependency-free.

#ifndef NEUROPRINT_CORE_SVR_H_
#define NEUROPRINT_CORE_SVR_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

struct SvrOptions {
  double cost = 1.0;        ///< C: upper bound on |dual coefficient|.
  double epsilon = 0.1;     ///< Width of the insensitive tube.
  int max_epochs = 1000;
  double tolerance = 1e-6;  ///< Stop when the largest coefficient step is below.
  std::uint64_t seed = 7;   ///< Coordinate order shuffling.
};

/// A fitted linear SVR model: y ~ w . x + b.
class LinearSvr {
 public:
  /// Fits on samples-by-features `x` and targets `y` (y.size() == x.rows()).
  static Result<LinearSvr> Fit(const linalg::Matrix& x, const linalg::Vector& y,
                               const SvrOptions& options = {});

  double Predict(const linalg::Vector& features) const;

  /// Predicts every row of `x`.
  Result<linalg::Vector> PredictBatch(const linalg::Matrix& x) const;

  const linalg::Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  int epochs_run() const { return epochs_run_; }

 private:
  linalg::Vector weights_;
  double bias_ = 0.0;
  int epochs_run_ = 0;
};

/// Root-mean-squared error of predictions vs truth, normalized by the
/// mean of `truth` and expressed in percent — the nRMSE of Table 1 (the
/// performance metrics are percent-correct values near 80-90, so
/// mean-normalization matches the paper's sub-1% train errors). Falls
/// back to range normalization when the mean is zero, then to plain RMSE.
Result<double> NormalizedRmsePercent(const linalg::Vector& predicted,
                                     const linalg::Vector& truth);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_SVR_H_
