#include "core/task_performance.h"

#include <cmath>

namespace neuroprint::core {
namespace {

// Subjects-as-rows design matrix from a (reduced) group matrix.
linalg::Matrix DesignFromGroup(const connectome::GroupMatrix& group) {
  return group.data().Transposed();
}

// Column-wise (x - mean) / sd with the given statistics; sd 0 maps to 0.
void Standardize(linalg::Matrix& design, const linalg::Vector& means,
                 const linalg::Vector& sds) {
  for (std::size_t i = 0; i < design.rows(); ++i) {
    double* row = design.RowPtr(i);
    for (std::size_t j = 0; j < design.cols(); ++j) {
      row[j] = sds[j] > 0.0 ? (row[j] - means[j]) / sds[j] : 0.0;
    }
  }
}

}  // namespace

Result<PerformanceRegressor> PerformanceRegressor::Fit(
    const connectome::GroupMatrix& train, const linalg::Vector& scores,
    const PerformanceRegressionOptions& options) {
  if (scores.size() != train.num_subjects()) {
    return Status::InvalidArgument(
        "PerformanceRegressor::Fit: one score per subject required");
  }
  if (options.num_features == 0) {
    return Status::InvalidArgument(
        "PerformanceRegressor::Fit: num_features must be > 0");
  }
  auto lev_scores = ComputeLeverageScores(train.data());
  if (!lev_scores.ok()) return lev_scores.status();

  PerformanceRegressor regressor;
  regressor.selected_features_ = TopKIndices(*lev_scores, options.num_features);
  regressor.full_feature_count_ = train.num_features();

  auto reduced = train.RestrictToFeatures(regressor.selected_features_);
  if (!reduced.ok()) return reduced.status();
  linalg::Matrix design = DesignFromGroup(*reduced);

  // Standardize features / centre the target using training statistics.
  const std::size_t p = design.cols();
  regressor.feature_means_.assign(p, 0.0);
  regressor.feature_sds_.assign(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < design.rows(); ++i) mean += design(i, j);
    mean /= static_cast<double>(design.rows());
    double var = 0.0;
    for (std::size_t i = 0; i < design.rows(); ++i) {
      const double d = design(i, j) - mean;
      var += d * d;
    }
    regressor.feature_means_[j] = mean;
    regressor.feature_sds_[j] =
        design.rows() > 1
            ? std::sqrt(var / static_cast<double>(design.rows() - 1))
            : 0.0;
  }
  Standardize(design, regressor.feature_means_, regressor.feature_sds_);

  double score_mean = 0.0;
  for (double s : scores) score_mean += s;
  score_mean /= static_cast<double>(scores.size());
  regressor.score_mean_ = score_mean;
  linalg::Vector centred = scores;
  for (double& s : centred) s -= score_mean;

  auto model = LinearSvr::Fit(design, centred, options.svr);
  if (!model.ok()) return model.status();
  regressor.model_ = std::move(model).value();
  return regressor;
}

Result<linalg::Vector> PerformanceRegressor::Predict(
    const connectome::GroupMatrix& group) const {
  if (group.num_features() != full_feature_count_) {
    return Status::InvalidArgument(
        "PerformanceRegressor::Predict: feature-space mismatch");
  }
  auto reduced = group.RestrictToFeatures(selected_features_);
  if (!reduced.ok()) return reduced.status();
  linalg::Matrix design = DesignFromGroup(*reduced);
  Standardize(design, feature_means_, feature_sds_);
  auto predicted = model_.PredictBatch(design);
  if (!predicted.ok()) return predicted.status();
  for (double& v : *predicted) v += score_mean_;
  return predicted;
}

Result<PerformanceEvaluation> EvaluatePerformancePrediction(
    const connectome::GroupMatrix& train, const linalg::Vector& train_scores,
    const connectome::GroupMatrix& test, const linalg::Vector& test_scores,
    const PerformanceRegressionOptions& options) {
  auto regressor = PerformanceRegressor::Fit(train, train_scores, options);
  if (!regressor.ok()) return regressor.status();

  auto train_pred = regressor->Predict(train);
  if (!train_pred.ok()) return train_pred.status();
  auto test_pred = regressor->Predict(test);
  if (!test_pred.ok()) return test_pred.status();

  PerformanceEvaluation eval;
  auto train_nrmse = NormalizedRmsePercent(*train_pred, train_scores);
  if (!train_nrmse.ok()) return train_nrmse.status();
  eval.train_nrmse_percent = *train_nrmse;
  auto test_nrmse = NormalizedRmsePercent(*test_pred, test_scores);
  if (!test_nrmse.ok()) return test_nrmse.status();
  eval.test_nrmse_percent = *test_nrmse;
  return eval;
}

}  // namespace neuroprint::core
