#include "core/row_sampling.h"

#include <cmath>

#include "core/leverage.h"
#include "linalg/stats.h"

namespace neuroprint::core {

Result<linalg::Vector> SamplingProbabilities(const linalg::Matrix& a,
                                             SamplingDistribution dist) {
  const std::size_t m = a.rows();
  if (m == 0) {
    return Status::InvalidArgument("SamplingProbabilities: empty matrix");
  }
  linalg::Vector p(m, 0.0);
  switch (dist) {
    case SamplingDistribution::kUniform: {
      const double uniform = 1.0 / static_cast<double>(m);
      for (double& v : p) v = uniform;
      return p;
    }
    case SamplingDistribution::kL2Norm: {
      p = linalg::RowNormsSquared(a);
      break;
    }
    case SamplingDistribution::kLeverage: {
      auto scores = ComputeLeverageScores(a);
      if (!scores.ok()) return scores.status();
      p = std::move(scores).value();
      break;
    }
  }
  double total = 0.0;
  for (double v : p) total += v;
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "SamplingProbabilities: all sampling weights are zero");
  }
  for (double& v : p) v /= total;
  return p;
}

Result<RowSample> SampleRows(const linalg::Matrix& a, std::size_t s,
                             SamplingDistribution dist, Rng& rng) {
  if (s == 0) {
    return Status::InvalidArgument("SampleRows: s must be positive");
  }
  auto probabilities = SamplingProbabilities(a, dist);
  if (!probabilities.ok()) return probabilities.status();
  const linalg::Vector& p = *probabilities;

  // Inverse-CDF sampling over the cumulative distribution.
  linalg::Vector cdf(p.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // Guard against rounding shortfall.

  RowSample out;
  out.sketch = linalg::Matrix(s, a.cols());
  out.indices.resize(s);
  out.probabilities = p;
  for (std::size_t t = 0; t < s; ++t) {
    const double u = rng.Uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    std::size_t row = static_cast<std::size_t>(it - cdf.begin());
    // Skip any zero-probability rows the binary search may have landed on.
    while (row + 1 < p.size() && p[row] == 0.0) ++row;
    out.indices[t] = row;
    const double scale = 1.0 / std::sqrt(static_cast<double>(s) * p[row]);
    const double* src = a.RowPtr(row);
    double* dst = out.sketch.RowPtr(t);
    for (std::size_t j = 0; j < a.cols(); ++j) dst[j] = scale * src[j];
  }
  return out;
}

double GramApproximationError(const linalg::Matrix& a,
                              const linalg::Matrix& sketch) {
  return (linalg::Gram(a) - linalg::Gram(sketch)).FrobeniusNorm();
}

}  // namespace neuroprint::core
