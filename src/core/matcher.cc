#include "core/matcher.h"

#include <algorithm>
#include <limits>

#include "linalg/stats.h"
#include "util/string_util.h"

namespace neuroprint::core {
namespace {

/// Best and second-best entries of one similarity column. Ties keep the
/// lowest row (strict >, ascending scan) — the shared contract that makes
/// ArgmaxMatch and MatchMargins agree with each other and with the serial
/// scan at any thread count.
struct ColumnTopTwo {
  std::size_t best_row = 0;
  double best = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
};

ColumnTopTwo TopTwoInColumn(const linalg::Matrix& similarity, std::size_t j) {
  ColumnTopTwo top;
  for (std::size_t i = 0; i < similarity.rows(); ++i) {
    const double v = similarity(i, j);
    if (v > top.best) {
      top.second = top.best;
      top.best = v;
      top.best_row = i;
    } else if (v > top.second) {
      top.second = v;
    }
  }
  return top;
}

}  // namespace

Result<linalg::Matrix> SimilarityMatrix(
    const connectome::GroupMatrix& known,
    const connectome::GroupMatrix& anonymous, const ParallelContext& ctx) {
  if (known.num_features() != anonymous.num_features()) {
    return Status::InvalidArgument(StrFormat(
        "SimilarityMatrix: feature mismatch (%zu vs %zu) — restrict both "
        "group matrices to the same feature set first",
        known.num_features(), anonymous.num_features()));
  }
  if (known.num_features() < 2) {
    return Status::InvalidArgument(
        "SimilarityMatrix: need at least 2 features for correlation");
  }
  return linalg::ColumnCrossCorrelation(known.data(), anonymous.data(), ctx);
}

std::vector<std::size_t> ArgmaxMatch(const linalg::Matrix& similarity,
                                     const ParallelContext& ctx) {
  // Columns are independent; the scan order within a column (strict >,
  // ascending i) is unchanged, so ties resolve identically to serial.
  std::vector<std::size_t> predicted(similarity.cols(), 0);
  ParallelFor(ctx, 0, similarity.cols(), GrainForWork(similarity.rows()),
              [&](std::size_t col_lo, std::size_t col_hi) {
                for (std::size_t j = col_lo; j < col_hi; ++j) {
                  predicted[j] = TopTwoInColumn(similarity, j).best_row;
                }
              });
  return predicted;
}

Result<double> IdentificationAccuracy(
    const std::vector<std::size_t>& predicted,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids) {
  if (predicted.size() != anonymous_ids.size()) {
    return Status::InvalidArgument(
        "IdentificationAccuracy: prediction/id count mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("IdentificationAccuracy: no predictions");
  }
  std::size_t correct = 0;
  for (std::size_t j = 0; j < predicted.size(); ++j) {
    if (predicted[j] >= known_ids.size()) {
      return Status::OutOfRange(
          "IdentificationAccuracy: predicted index out of range");
    }
    if (known_ids[predicted[j]] == anonymous_ids[j]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

Result<SimilarityStats> ComputeSimilarityStats(const linalg::Matrix& similarity) {
  if (similarity.rows() != similarity.cols() || similarity.rows() == 0) {
    return Status::InvalidArgument(
        "ComputeSimilarityStats: expects an aligned square matrix");
  }
  const std::size_t n = similarity.rows();
  SimilarityStats stats;
  stats.diagonal_min = std::numeric_limits<double>::infinity();
  stats.off_diagonal_max = -std::numeric_limits<double>::infinity();
  double diag_sum = 0.0, off_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = similarity(i, j);
      if (i == j) {
        diag_sum += v;
        stats.diagonal_min = std::min(stats.diagonal_min, v);
      } else {
        off_sum += v;
        stats.off_diagonal_max = std::max(stats.off_diagonal_max, v);
      }
    }
  }
  stats.diagonal_mean = diag_sum / static_cast<double>(n);
  stats.off_diagonal_mean =
      n > 1 ? off_sum / static_cast<double>(n * n - n) : 0.0;
  stats.contrast = stats.diagonal_mean - stats.off_diagonal_mean;
  if (n == 1) stats.off_diagonal_max = 0.0;
  return stats;
}

Result<linalg::Vector> MatchMargins(const linalg::Matrix& similarity,
                                    const ParallelContext& ctx) {
  if (similarity.rows() < 2 || similarity.cols() == 0) {
    return Status::InvalidArgument(
        "MatchMargins: need at least 2 candidates and 1 target");
  }
  linalg::Vector margins(similarity.cols(), 0.0);
  ParallelFor(ctx, 0, similarity.cols(), GrainForWork(similarity.rows()),
              [&](std::size_t col_lo, std::size_t col_hi) {
                for (std::size_t j = col_lo; j < col_hi; ++j) {
                  const ColumnTopTwo top = TopTwoInColumn(similarity, j);
                  margins[j] = top.best - top.second;
                }
              });
  return margins;
}


Result<std::vector<std::size_t>> TrueMatchRanks(
    const linalg::Matrix& similarity,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids) {
  if (known_ids.size() != similarity.rows() ||
      anonymous_ids.size() != similarity.cols()) {
    return Status::InvalidArgument("TrueMatchRanks: id count mismatch");
  }
  if (similarity.rows() == 0 || similarity.cols() == 0) {
    return Status::InvalidArgument("TrueMatchRanks: empty similarity matrix");
  }
  std::vector<std::size_t> ranks(similarity.cols());
  for (std::size_t j = 0; j < similarity.cols(); ++j) {
    // Locate the true identity's row (first occurrence).
    std::size_t true_row = similarity.rows();
    for (std::size_t i = 0; i < similarity.rows(); ++i) {
      if (known_ids[i] == anonymous_ids[j]) {
        true_row = i;
        break;
      }
    }
    if (true_row == similarity.rows()) {
      ranks[j] = similarity.rows() + 1;  // Identity not in the gallery.
      continue;
    }
    const double true_score = similarity(true_row, j);
    std::size_t rank = 1;
    for (std::size_t i = 0; i < similarity.rows(); ++i) {
      if (i != true_row && similarity(i, j) > true_score) ++rank;
    }
    ranks[j] = rank;
  }
  return ranks;
}

Result<linalg::Vector> CumulativeMatchCurve(
    const linalg::Matrix& similarity,
    const std::vector<std::string>& known_ids,
    const std::vector<std::string>& anonymous_ids, std::size_t max_rank) {
  if (max_rank == 0) {
    return Status::InvalidArgument("CumulativeMatchCurve: max_rank must be > 0");
  }
  auto ranks = TrueMatchRanks(similarity, known_ids, anonymous_ids);
  if (!ranks.ok()) return ranks.status();
  const std::size_t depth = std::min(max_rank, similarity.rows());
  linalg::Vector curve(depth, 0.0);
  for (std::size_t rank : *ranks) {
    for (std::size_t k = rank; k <= depth; ++k) curve[k - 1] += 1.0;
  }
  const double n = static_cast<double>(anonymous_ids.size());
  for (double& v : curve) v /= n;
  return curve;
}

}  // namespace neuroprint::core
