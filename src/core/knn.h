// Exact k-nearest-neighbour classification in the t-SNE plane (the
// paper's Section 3.3.2 assigns task labels to anonymous scans from their
// nearest labelled neighbour in the 2-D embedding).

#ifndef NEUROPRINT_CORE_KNN_H_
#define NEUROPRINT_CORE_KNN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::core {

/// Classifies each row of `queries` by majority vote among its k nearest
/// rows of `train` (Euclidean; equal distances order by training index,
/// and vote ties break toward the closest neighbour's label).
/// labels.size() must equal train.rows(); k is clamped to train.rows(),
/// and k == 0 is an error.
Result<std::vector<int>> KnnClassify(const linalg::Matrix& train,
                                     const std::vector<int>& labels,
                                     const linalg::Matrix& queries,
                                     std::size_t k = 1,
                                     const ParallelContext& ctx = {});

/// Fraction of predictions equal to truth.
Result<double> ClassificationAccuracy(const std::vector<int>& predicted,
                                      const std::vector<int>& truth);

}  // namespace neuroprint::core

#endif  // NEUROPRINT_CORE_KNN_H_
