// Umbrella header: the full neuroprint public API.
//
// Include this for quick experiments; production code should include the
// specific module headers it uses (see README "Architecture").

#ifndef NEUROPRINT_NEUROPRINT_H_
#define NEUROPRINT_NEUROPRINT_H_

// Utilities.
#include "util/batch.h"          // FailurePolicy / BatchReport semantics.
#include "util/check.h"          // NP_CHECK fail-fast macros.
#include "util/csv_writer.h"     // CSV output.
#include "util/fault.h"          // Deterministic fault injection.
#include "util/logging.h"        // NP_LOG leveled logging.
#include "util/metrics.h"        // Counters / gauges / histograms registry.
#include "util/random.h"         // Seedable PCG64 RNG.
#include "util/status.h"         // Status / Result<T> error handling.
#include "util/stopwatch.h"      // Wall-clock timing.
#include "util/string_util.h"    // StrFormat and friends.
#include "util/thread_pool.h"    // Deterministic ParallelFor / thread knob.
#include "util/trace.h"          // NP_TRACE_SCOPE spans + chrome export.

// Dense linear algebra.
#include "linalg/bidiag.h"         // Blocked Householder bidiagonalization.
#include "linalg/cholesky.h"       // SPD factorization and solves.
#include "linalg/eig_sym.h"        // Symmetric eigendecomposition (Jacobi).
#include "linalg/gemm_kernel.h"    // Tiled GEMM micro-kernels.
#include "linalg/lu.h"             // LU solve / inverse / determinant.
#include "linalg/matrix.h"         // Matrix type and gemm-like kernels.
#include "linalg/qr.h"             // Householder QR, least squares.
#include "linalg/randomized_svd.h" // Halko randomized range-finder SVD.
#include "linalg/simd/simd.h"      // Runtime-dispatched SIMD micro-kernels.
#include "linalg/stats.h"          // Correlation/covariance/z-score kernels.
#include "linalg/svd.h"            // Thin SVD (Golub-Kahan-Reinsch, Jacobi).
#include "linalg/vector_ops.h"     // Level-1 vector kernels.

// Signal processing.
#include "signal/fft.h"          // Radix-2 + Bluestein FFT.
#include "signal/filters.h"      // Band-pass, detrend, confound regression.
#include "signal/resample.h"     // Temporal shifting / resampling.

// Imaging.
#include "image/affine.h"        // Rigid transforms and 4x4 affines.
#include "image/interpolate.h"   // Trilinear / nearest sampling.
#include "image/mask.h"          // Brain masking.
#include "image/registration.h"  // Rigid registration, motion correction.
#include "image/resample.h"      // Applying transforms to volumes.
#include "image/smooth.h"        // Gaussian smoothing.
#include "image/volume.h"        // Volume3D / Volume4D.

// NIfTI I/O.
#include "nifti/nifti_header.h"  // Header codec.
#include "nifti/nifti_io.h"      // .nii / .nii.gz read & write.

// Atlases.
#include "atlas/atlas.h"             // Label-volume parcellation.
#include "atlas/atlas_io.h"          // Atlas <-> NIfTI label images.
#include "atlas/region_timeseries.h" // Voxel x time -> region x time.
#include "atlas/synthetic_atlas.h"   // Voronoi parcellation generator.

// Preprocessing (the paper's Figure-4 pipeline).
#include "preprocess/pipeline.h"
#include "preprocess/motion_metrics.h"
#include "preprocess/slice_timing.h"

// Connectomes.
#include "connectome/connectome.h"           // Pearson connectomes.
#include "connectome/group_matrix.h"         // Features x subjects.
#include "connectome/group_matrix_io.h"      // Binary persistence.
#include "connectome/partial_correlation.h"  // Alternative coherence.

// Cohort simulation (the HCP / ADHD-200 substitute).
#include "sim/cohort.h"
#include "sim/hemodynamics.h"
#include "sim/task.h"
#include "sim/voxel_render.h"

// The attack and its companions (the paper's contribution).
#include "core/attack.h"            // DeanonymizationAttack facade.
#include "core/defense.h"           // Signature suppression (Discussion).
#include "core/knn.h"               // k-NN task classification.
#include "core/leverage.h"          // Leverage scores (Eq. 5).
#include "core/matcher.h"           // Similarity matching and stats.
#include "core/row_sampling.h"      // Randomized sampling (Alg. 1).
#include "core/signature_map.h"     // Edge -> region localization.
#include "core/svr.h"               // Linear epsilon-SVR.
#include "core/task_performance.h"  // Table-1 regression harness.
#include "core/tsne.h"              // t-SNE (Alg. 2).

// Gallery-scale identification service.
#include "service/identification_index.h"  // Sharded incremental index.
#include "service/synthetic_gallery.h"     // Seeded scale-test galleries.

#endif  // NEUROPRINT_NEUROPRINT_H_
