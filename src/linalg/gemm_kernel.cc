#include "linalg/gemm_kernel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "linalg/simd/simd.h"
#include "util/check.h"
#include "util/metrics.h"

namespace neuroprint::linalg {
namespace {

// Register tile: kMr x kNr accumulators (16 doubles). The shape is owned
// by the simd dispatch layer — its micro-kernel contracts one packed
// kMr-row group against one packed kNr-column group per call.
constexpr std::size_t kMr = simd::kGemmMr;
constexpr std::size_t kNr = simd::kGemmNr;

// TiledGram reuses one packed buffer for both operands of a tile, which
// requires the A and B lane counts to agree.
static_assert(kMr == kNr, "Gram packing reuse requires square micro-tiles");

// Output-row block per packed A panel: kBlockM * kGemmPanelK doubles
// (128 KiB) stay cache-resident while the micro kernel sweeps N.
constexpr std::size_t kBlockM = 64;
static_assert(kBlockM % kMr == 0, "row blocks must align to micro-tiles");

// Below this many multiply-adds, packing costs more than it saves: run the
// reference loops. Same canonical order, so the cutover never shows up in
// the bits; it is a pure function of the shape, so neither can it introduce
// thread-count dependence.
constexpr std::size_t kSmallGemmWork = std::size_t{1} << 15;

// The panel-parallel path materializes one m x n partial matrix per panel;
// only use it when the output is small (the huge-K shapes that need it —
// Gram / MatTMul on 64620 x 100 group matrices — all are).
constexpr std::size_t kPanelParallelMaxOutput = std::size_t{1} << 14;

inline std::size_t CeilDiv(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

inline double HatA(const Matrix& a, bool trans_a, std::size_t i,
                   std::size_t k) {
  return trans_a ? a(k, i) : a(i, k);
}

inline double HatB(const Matrix& b, bool trans_b, std::size_t k,
                   std::size_t j) {
  return trans_b ? b(j, k) : b(k, j);
}

// Packs Ahat rows [i0, i0+mb) of panel [k0, k0+kc) into kMr-row groups:
// buf[g*kc*kMr + kk*kMr + r] = Ahat(i0 + g*kMr + r, k0 + kk). Rows past mb
// pack as zeros; their lanes land in accumulators that are never stored.
void PackA(const Matrix& a, bool trans_a, std::size_t i0, std::size_t mb,
           std::size_t k0, std::size_t kc, double* buf) {
  const std::size_t groups = CeilDiv(mb, kMr);
  std::fill(buf, buf + groups * kc * kMr, 0.0);
  if (!trans_a) {
    for (std::size_t g = 0; g < groups; ++g) {
      double* gbuf = buf + g * kc * kMr;
      const std::size_t rows = std::min(kMr, mb - g * kMr);
      for (std::size_t r = 0; r < rows; ++r) {
        const double* src = a.RowPtr(i0 + g * kMr + r) + k0;
        for (std::size_t kk = 0; kk < kc; ++kk) gbuf[kk * kMr + r] = src[kk];
      }
    }
  } else {
    // Ahat(i, k) = a(k, i): stream the rows of `a`.
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const double* src = a.RowPtr(k0 + kk) + i0;
      for (std::size_t g = 0; g < groups; ++g) {
        double* gbuf = buf + g * kc * kMr + kk * kMr;
        const std::size_t rows = std::min(kMr, mb - g * kMr);
        for (std::size_t r = 0; r < rows; ++r) gbuf[r] = src[g * kMr + r];
      }
    }
  }
}

// Packs Bhat cols [0, nb) of panel [k0, k0+kc) into kNr-column groups:
// buf[g*kc*kNr + kk*kNr + c] = Bhat(k0 + kk, g*kNr + c), zero-padded.
void PackB(const Matrix& b, bool trans_b, std::size_t k0, std::size_t kc,
           std::size_t nb, double* buf) {
  const std::size_t groups = CeilDiv(nb, kNr);
  std::fill(buf, buf + groups * kc * kNr, 0.0);
  if (!trans_b) {
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const double* src = b.RowPtr(k0 + kk);
      for (std::size_t g = 0; g < groups; ++g) {
        double* gbuf = buf + g * kc * kNr + kk * kNr;
        const std::size_t cols = std::min(kNr, nb - g * kNr);
        for (std::size_t c = 0; c < cols; ++c) gbuf[c] = src[g * kNr + c];
      }
    }
  } else {
    // Bhat(k, j) = b(j, k): stream the rows of `b`.
    for (std::size_t g = 0; g < groups; ++g) {
      double* gbuf = buf + g * kc * kNr;
      const std::size_t cols = std::min(kNr, nb - g * kNr);
      for (std::size_t c = 0; c < cols; ++c) {
        const double* src = b.RowPtr(g * kNr + c) + k0;
        for (std::size_t kk = 0; kk < kc; ++kk) gbuf[kk * kNr + c] = src[kk];
      }
    }
  }
}

// One register tile: acc = sum over the panel's kc indices, ascending k
// from 0.0 accumulators — the canonical within-panel order. The dispatched
// kernel (scalar/AVX2/NEON) is bit-identical across ISAs: it vectorizes
// across the kNr independent output lanes and never fuses multiply-add,
// so the per-element operation sequence is exactly the reference loop's.
inline void MicroKernel(const simd::Ops& ops, const double* __restrict ap,
                        const double* __restrict bp, std::size_t kc,
                        double acc[kMr][kNr]) {
  ops.gemm_4x4(ap, bp, kc, &acc[0][0]);
}

// Folds a tile's panel sums into C: the first panel assigns, later panels
// add — the canonical across-panel order.
inline void StoreTile(const double acc[kMr][kNr], std::size_t i0,
                      std::size_t rows, std::size_t j0, std::size_t cols,
                      bool overwrite, Matrix* c) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* crow = c->RowPtr(i0 + r) + j0;
    if (overwrite) {
      for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] = acc[r][cc];
    } else {
      for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] += acc[r][cc];
    }
  }
}

// StoreTile variant for diagonal Gram tiles: only j >= i lands in G.
inline void StoreTileUpper(const double acc[kMr][kNr], std::size_t i0,
                           std::size_t rows, std::size_t j0, std::size_t cols,
                           bool overwrite, Matrix* g) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t i = i0 + r;
    double* grow = g->RowPtr(i);
    for (std::size_t cc = 0; cc < cols; ++cc) {
      const std::size_t j = j0 + cc;
      if (j < i) continue;
      if (overwrite) {
        grow[j] = acc[r][cc];
      } else {
        grow[j] += acc[r][cc];
      }
    }
  }
}

// All tiles of one packed (A block) x (B panel) product.
void ComputePanelBlock(const double* ap, std::size_t i0, std::size_t mb,
                       const double* bp, std::size_t n, std::size_t kc,
                       bool overwrite, Matrix* c) {
  const simd::Ops& ops = simd::ActiveOps();
  const std::size_t igroups = CeilDiv(mb, kMr);
  const std::size_t jgroups = CeilDiv(n, kNr);
  double acc[kMr][kNr];
  for (std::size_t jg = 0; jg < jgroups; ++jg) {
    const double* bg = bp + jg * kc * kNr;
    const std::size_t cols = std::min(kNr, n - jg * kNr);
    for (std::size_t ig = 0; ig < igroups; ++ig) {
      MicroKernel(ops, ap + ig * kc * kMr, bg, kc, acc);
      StoreTile(acc, i0 + ig * kMr, std::min(kMr, mb - ig * kMr), jg * kNr,
                cols, overwrite, c);
    }
  }
}

// One full K panel of C = op(A) op(B): packs B once and sweeps row blocks.
void ComputePanel(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
                  std::size_t m, std::size_t n, std::size_t k_dim,
                  std::size_t p, bool overwrite, Matrix* out,
                  std::vector<double>& apack, std::vector<double>& bpack) {
  const std::size_t k0 = p * kGemmPanelK;
  const std::size_t kc = std::min(kGemmPanelK, k_dim - k0);
  PackB(b, trans_b, k0, kc, n, bpack.data());
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t mb = std::min(kBlockM, m - i0);
    PackA(a, trans_a, i0, mb, k0, kc, apack.data());
    ComputePanelBlock(apack.data(), i0, mb, bpack.data(), n, kc, overwrite,
                      out);
  }
}

std::size_t APackSize() { return CeilDiv(kBlockM, kMr) * kMr * kGemmPanelK; }

std::size_t BPackSize(std::size_t n) {
  return CeilDiv(n, kNr) * kNr * kGemmPanelK;
}

// Huge-contraction shapes (small C, K in the tens of thousands — Gram and
// MatTMul on group matrices): parallelize over K panels. Each panel writes
// its own partial matrix; partials fold in ascending panel order, which is
// bit-identical to the serial overwrite-then-accumulate.
void PanelParallelGemm(const Matrix& a, bool trans_a, const Matrix& b,
                       bool trans_b, std::size_t m, std::size_t n,
                       std::size_t k_dim, Matrix* c,
                       const ParallelContext& ctx) {
  const std::size_t num_panels = CeilDiv(k_dim, kGemmPanelK);
  if (ResolveThreadCount(ctx) <= 1 || ThreadPool::InParallelRegion()) {
    std::vector<double> apack(APackSize());
    std::vector<double> bpack(BPackSize(n));
    for (std::size_t p = 0; p < num_panels; ++p) {
      ComputePanel(a, trans_a, b, trans_b, m, n, k_dim, p, p == 0, c, apack,
                   bpack);
    }
    return;
  }
  std::vector<Matrix> partials(num_panels);
  ParallelFor(ctx, 0, num_panels, 1,
              [&](std::size_t plo, std::size_t phi) {
                std::vector<double> apack(APackSize());
                std::vector<double> bpack(BPackSize(n));
                for (std::size_t p = plo; p < phi; ++p) {
                  partials[p] = Matrix(m, n);
                  ComputePanel(a, trans_a, b, trans_b, m, n, k_dim, p,
                               /*overwrite=*/true, &partials[p], apack, bpack);
                }
              });
  *c = std::move(partials[0]);
  for (std::size_t p = 1; p < num_panels; ++p) *c += partials[p];
}

// General shapes: parallelize over kBlockM-row output blocks (disjoint C
// slices); B is packed once up front and shared read-only.
void RowParallelGemm(const Matrix& a, bool trans_a, const Matrix& b,
                     bool trans_b, std::size_t m, std::size_t n,
                     std::size_t k_dim, Matrix* c, const ParallelContext& ctx) {
  const std::size_t num_panels = CeilDiv(k_dim, kGemmPanelK);
  const std::size_t panel_stride = BPackSize(n);
  std::vector<double> bpack(num_panels * panel_stride);
  for (std::size_t p = 0; p < num_panels; ++p) {
    const std::size_t k0 = p * kGemmPanelK;
    PackB(b, trans_b, k0, std::min(kGemmPanelK, k_dim - k0), n,
          bpack.data() + p * panel_stride);
  }
  const std::size_t num_blocks = CeilDiv(m, kBlockM);
  ParallelFor(ctx, 0, num_blocks, 1, [&](std::size_t blo, std::size_t bhi) {
    std::vector<double> apack(APackSize());
    for (std::size_t ib = blo; ib < bhi; ++ib) {
      const std::size_t i0 = ib * kBlockM;
      const std::size_t mb = std::min(kBlockM, m - i0);
      for (std::size_t p = 0; p < num_panels; ++p) {
        const std::size_t k0 = p * kGemmPanelK;
        const std::size_t kc = std::min(kGemmPanelK, k_dim - k0);
        PackA(a, trans_a, i0, mb, k0, kc, apack.data());
        ComputePanelBlock(apack.data(), i0, mb,
                          bpack.data() + p * panel_stride, n, kc, p == 0, c);
      }
    }
  });
}

// Upper-triangle tiles of one Gram panel. With kMr == kNr the packed panel
// of `a` serves as both operands: row group ig and column group jg index
// the same buffer.
void ComputeGramPanelTiles(const double* pack, std::size_t i0, std::size_t mb,
                           std::size_t n, std::size_t kc, bool overwrite,
                           Matrix* g) {
  const simd::Ops& ops = simd::ActiveOps();
  const std::size_t jgroups = CeilDiv(n, kNr);
  const std::size_t ig_lo = i0 / kMr;
  const std::size_t ig_hi = CeilDiv(i0 + mb, kMr);
  double acc[kMr][kNr];
  for (std::size_t jg = ig_lo; jg < jgroups; ++jg) {
    const double* bg = pack + jg * kc * kNr;
    const std::size_t cols = std::min(kNr, n - jg * kNr);
    const std::size_t ig_end = std::min(ig_hi, jg + 1);
    for (std::size_t ig = ig_lo; ig < ig_end; ++ig) {
      MicroKernel(ops, pack + ig * kc * kMr, bg, kc, acc);
      const std::size_t rows = std::min(kMr, (i0 + mb) - ig * kMr);
      if (ig == jg) {
        StoreTileUpper(acc, ig * kMr, rows, jg * kNr, cols, overwrite, g);
      } else {
        StoreTile(acc, ig * kMr, rows, jg * kNr, cols, overwrite, g);
      }
    }
  }
}

void MirrorLower(Matrix* g) {
  const std::size_t n = g->rows();
  for (std::size_t i = 1; i < n; ++i) {
    double* grow = g->RowPtr(i);
    for (std::size_t j = 0; j < i; ++j) grow[j] = (*g)(j, i);
  }
}

// Canonical-order Gram on the upper triangle + mirror, naive loops.
void ReferenceGram(const Matrix& a, Matrix* g) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  const std::size_t num_panels = CeilDiv(m, kGemmPanelK);
  for (std::size_t p = 0; p < num_panels; ++p) {
    const std::size_t k0 = p * kGemmPanelK;
    const std::size_t k1 = std::min(m, k0 + kGemmPanelK);
    for (std::size_t i = 0; i < n; ++i) {
      double* grow = g->RowPtr(i);
      for (std::size_t j = i; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = k0; k < k1; ++k) acc += a(k, i) * a(k, j);
        if (p == 0) {
          grow[j] = acc;
        } else {
          grow[j] += acc;
        }
      }
    }
  }
  MirrorLower(g);
}

}  // namespace

void ReferenceGemm(const Matrix& a, bool trans_a, const Matrix& b,
                   bool trans_b, Matrix* c) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k_dim = trans_a ? a.rows() : a.cols();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  NP_CHECK(c->rows() == m && c->cols() == n);
  if (m == 0 || n == 0) return;
  if (k_dim == 0) {
    c->Fill(0.0);
    return;
  }
  const std::size_t num_panels = CeilDiv(k_dim, kGemmPanelK);
  for (std::size_t p = 0; p < num_panels; ++p) {
    const std::size_t k0 = p * kGemmPanelK;
    const std::size_t k1 = std::min(k_dim, k0 + kGemmPanelK);
    for (std::size_t i = 0; i < m; ++i) {
      double* crow = c->RowPtr(i);
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = k0; k < k1; ++k) {
          acc += HatA(a, trans_a, i, k) * HatB(b, trans_b, k, j);
        }
        if (p == 0) {
          crow[j] = acc;
        } else {
          crow[j] += acc;
        }
      }
    }
  }
}

void TiledGemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
               Matrix* c, const ParallelContext& ctx) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k_dim = trans_a ? a.rows() : a.cols();
  const std::size_t k_b = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  NP_CHECK_EQ(k_dim, k_b) << "TiledGemm contraction mismatch";
  NP_CHECK(c->rows() == m && c->cols() == n) << "TiledGemm output shape";
  // Counted at the public tiled entry only — ReferenceGemm also serves as
  // the internal small-problem path, so counting there would double-book.
  metrics::Count("gemm.calls", 1);
  metrics::Count("gemm.flops", 2 * m * n * k_dim);
  if (m == 0 || n == 0) return;
  if (k_dim == 0) {
    c->Fill(0.0);
    return;
  }
  if (m * n * k_dim <= kSmallGemmWork) {
    ReferenceGemm(a, trans_a, b, trans_b, c);
    return;
  }
  const std::size_t num_panels = CeilDiv(k_dim, kGemmPanelK);
  if (m * n <= kPanelParallelMaxOutput && num_panels >= 2) {
    PanelParallelGemm(a, trans_a, b, trans_b, m, n, k_dim, c, ctx);
  } else {
    RowParallelGemm(a, trans_a, b, trans_b, m, n, k_dim, c, ctx);
  }
}

void TiledGram(const Matrix& a, Matrix* g, const ParallelContext& ctx) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  NP_CHECK(g->rows() == n && g->cols() == n) << "TiledGram output shape";
  metrics::Count("gemm.gram_calls", 1);
  // Upper triangle incl. diagonal: m * n(n+1)/2 multiply-adds = 2 flops.
  metrics::Count("gemm.flops", m * n * (n + 1));
  if (n == 0) return;
  if (m == 0) {
    g->Fill(0.0);
    return;
  }
  if (n * n * m <= kSmallGemmWork) {
    ReferenceGram(a, g);
    return;
  }
  const std::size_t num_panels = CeilDiv(m, kGemmPanelK);
  const std::size_t panel_stride = BPackSize(n);

  if (n * n <= kPanelParallelMaxOutput && num_panels >= 2) {
    if (ResolveThreadCount(ctx) <= 1 || ThreadPool::InParallelRegion()) {
      std::vector<double> pack(panel_stride);
      for (std::size_t p = 0; p < num_panels; ++p) {
        const std::size_t k0 = p * kGemmPanelK;
        const std::size_t kc = std::min(kGemmPanelK, m - k0);
        PackB(a, false, k0, kc, n, pack.data());
        ComputeGramPanelTiles(pack.data(), 0, n, n, kc, p == 0, g);
      }
    } else {
      std::vector<Matrix> partials(num_panels);
      ParallelFor(ctx, 0, num_panels, 1,
                  [&](std::size_t plo, std::size_t phi) {
                    std::vector<double> pack(panel_stride);
                    for (std::size_t p = plo; p < phi; ++p) {
                      const std::size_t k0 = p * kGemmPanelK;
                      const std::size_t kc = std::min(kGemmPanelK, m - k0);
                      PackB(a, false, k0, kc, n, pack.data());
                      partials[p] = Matrix(n, n);
                      ComputeGramPanelTiles(pack.data(), 0, n, n, kc,
                                            /*overwrite=*/true, &partials[p]);
                    }
                  });
      *g = std::move(partials[0]);
      for (std::size_t p = 1; p < num_panels; ++p) *g += partials[p];
    }
  } else {
    // Large-n Gram: parallelize over output-row blocks (ragged upper-
    // triangle work — the pool's work stealing rebalances it).
    std::vector<double> pack(num_panels * panel_stride);
    for (std::size_t p = 0; p < num_panels; ++p) {
      const std::size_t k0 = p * kGemmPanelK;
      PackB(a, false, k0, std::min(kGemmPanelK, m - k0), n,
            pack.data() + p * panel_stride);
    }
    const std::size_t num_blocks = CeilDiv(n, kBlockM);
    ParallelFor(ctx, 0, num_blocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t ib = blo; ib < bhi; ++ib) {
        const std::size_t i0 = ib * kBlockM;
        const std::size_t mb = std::min(kBlockM, n - i0);
        for (std::size_t p = 0; p < num_panels; ++p) {
          const std::size_t k0 = p * kGemmPanelK;
          const std::size_t kc = std::min(kGemmPanelK, m - k0);
          ComputeGramPanelTiles(pack.data() + p * panel_stride, i0, mb, n, kc,
                                p == 0, g);
        }
      }
    });
  }
  MirrorLower(g);
}

}  // namespace neuroprint::linalg
