// Cache-blocked GEMM micro-kernels with a fixed, shape-independent
// summation order.
//
// The public MatMul / MatTMul / MatMulT / Gram entry points in matrix.h all
// lower onto TiledGemm / TiledGram: packed A/B panels, an L2-sized row
// block, and a kMr x kNr register-blocked inner kernel. Throughput comes
// from packing (contiguous, aligned streams for the inner loop) and
// register tiling; determinism comes from a canonical accumulation order
// that every code path shares:
//
//   * The contraction dimension K is split into fixed panels of kGemmPanelK
//     indices. Panel boundaries depend only on K — never on the thread
//     count, the parallel strategy, or the tile sizes.
//   * Within a panel, each output element accumulates its products in
//     ascending k from a 0.0 accumulator.
//   * Panel sums are folded into the output in ascending panel order: the
//     first panel assigns, later panels add.
//
// ReferenceGemm() implements exactly this order with naive loops; the tests
// assert TiledGemm == ReferenceGemm *bitwise* for every shape and thread
// count. Because the order is canonical, the row-parallel path (chunks of
// output rows), the panel-parallel path (per-panel partial matrices folded
// in ascending panel order), and the serial path all produce identical
// bits.
//
// Unlike the pre-tiling kernels, zero inputs are not skipped (`if (x ==
// 0.0) continue` has no place in a register kernel); the only observable
// difference is the sign of exact-zero outputs in degenerate all-zero
// cancellation cases.

#ifndef NEUROPRINT_LINALG_GEMM_KERNEL_H_
#define NEUROPRINT_LINALG_GEMM_KERNEL_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "util/thread_pool.h"

namespace neuroprint::linalg {

/// Fixed K-panel width of the canonical accumulation order. Changing this
/// changes results at the rounding level; it is part of the numeric
/// contract, not a tuning knob.
constexpr std::size_t kGemmPanelK = 256;

/// C = op(A) * op(B) where op(X) is X or X^T per the trans flags. `c` must
/// be pre-sized to (trans_a ? a.cols() : a.rows()) x (trans_b ? b.rows() :
/// b.cols()) and must not alias `a` or `b`. Every element of `c` is
/// overwritten. Bitwise-deterministic at any thread count.
void TiledGemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
               Matrix* c, const ParallelContext& ctx = {});

/// G = A^T A. Computes only tiles intersecting the upper triangle and
/// mirrors, producing an exactly symmetric matrix that is bitwise-equal to
/// TiledGemm(a, true, a, false) (products commute, so the mirrored lower
/// triangle matches the canonical sums). `g` must be a.cols() x a.cols().
void TiledGram(const Matrix& a, Matrix* g, const ParallelContext& ctx = {});

/// The canonical order implemented with naive loops: serial, no packing,
/// no tiling. TiledGemm must match it bitwise; tests enforce this. Also
/// used directly for small problems where packing costs more than it saves
/// (the cutover is a pure function of the shape, so it cannot introduce
/// thread-count dependence).
void ReferenceGemm(const Matrix& a, bool trans_a, const Matrix& b,
                   bool trans_b, Matrix* c);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_GEMM_KERNEL_H_
