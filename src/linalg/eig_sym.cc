#include "linalg/eig_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/string_util.h"

namespace neuroprint::linalg {

Result<SymmetricEigenDecomposition> EigSym(const Matrix& a, int max_sweeps) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("EigSym: matrix not square");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("EigSym: non-finite input");
  }
  const double scale = a.MaxAbs();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > 1e-8 * std::max(1.0, scale)) {
        return Status::InvalidArgument(
            StrFormat("EigSym: input not symmetric at (%zu,%zu)", i, j));
      }
    }
  }

  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  const double tol = 1e-14 * std::max(1.0, m.FrobeniusNorm());
  bool converged = n < 2 || off_diagonal_norm() <= tol;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= tol / static_cast<double>(n)) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p, q, theta) on both sides: M <- J^T M J.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm() <= tol;
  }
  if (!converged) {
    return Status::NotConverged(
        StrFormat("EigSym: not converged after %d sweeps", max_sweeps));
  }

  SymmetricEigenDecomposition out;
  out.eigenvalues.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) out.eigenvalues[i] = m(i, i);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return out.eigenvalues[x] > out.eigenvalues[y];
  });
  Vector sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = out.eigenvalues[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = v(i, order[j]);
    }
  }
  out.eigenvalues = std::move(sorted_values);
  out.eigenvectors = std::move(sorted_vectors);
  return out;
}

}  // namespace neuroprint::linalg
