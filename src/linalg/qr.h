// Householder QR decomposition.
//
// For a tall matrix A (m >= n) computes A = Q R with Q m x n having
// orthonormal columns (thin Q) and R n x n upper-triangular. Used for
// least squares and as the reduction step of the tall-skinny SVD path
// (leverage scores of A equal the squared row norms of Q).

#ifndef NEUROPRINT_LINALG_QR_H_
#define NEUROPRINT_LINALG_QR_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::linalg {

/// Result of a thin QR factorization.
struct QrDecomposition {
  Matrix q;  ///< m x n, orthonormal columns.
  Matrix r;  ///< n x n, upper triangular.
};

/// Thin Householder QR of `a` (requires rows >= cols).
Result<QrDecomposition> QrDecompose(const Matrix& a);

/// Solves R x = b by back substitution, where `r` is n x n upper
/// triangular. Fails if a diagonal entry is (near) zero.
Result<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b);

/// Solves L x = b by forward substitution, where `l` is n x n lower
/// triangular. Fails if a diagonal entry is (near) zero.
Result<Vector> SolveLowerTriangular(const Matrix& l, const Vector& b);

/// Least-squares solution of min ||A x - b||_2 via QR (requires
/// rows >= cols and full column rank).
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_QR_H_
