#include "linalg/lu.h"

#include <cmath>

#include "util/string_util.h"

namespace neuroprint::linalg {

Result<LuDecomposition> LuDecomposition::Compute(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("LuDecomposition: matrix not square");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("LuDecomposition: non-finite input");
  }
  Matrix lu = a;
  std::vector<std::size_t> pivots(n);
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best == 0.0) {
      return Status::FailedPrecondition(
          StrFormat("LuDecomposition: singular matrix at column %zu", k));
    }
    pivots[k] = pivot;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      sign = -sign;
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_pivot;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return LuDecomposition(std::move(lu), std::move(pivots), sign);
}

Result<Vector> LuDecomposition::Solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("LuDecomposition::Solve: size mismatch");
  }
  Vector x = b;
  // Apply the row permutation.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots_[k] != k) std::swap(x[k], x[pivots_[k]]);
  }
  // Forward substitution with the unit-lower factor.
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = x[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Result<Matrix> LuDecomposition::Solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) {
    return Status::InvalidArgument("LuDecomposition::Solve: size mismatch");
  }
  Matrix x(n, b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Result<Vector> col = Solve(b.ColCopy(j));
    if (!col.ok()) return col.status();
    x.SetCol(j, *col);
  }
  return x;
}

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Result<Vector> LuSolve(const Matrix& a, const Vector& b) {
  Result<LuDecomposition> lu = LuDecomposition::Compute(a);
  if (!lu.ok()) return lu.status();
  return lu->Solve(b);
}

Result<Matrix> Inverse(const Matrix& a) {
  Result<LuDecomposition> lu = LuDecomposition::Compute(a);
  if (!lu.ok()) return lu.status();
  return lu->Solve(Matrix::Identity(a.rows()));
}

double Determinant(const Matrix& a) {
  Result<LuDecomposition> lu = LuDecomposition::Compute(a);
  if (!lu.ok()) return 0.0;
  return lu->Determinant();
}

}  // namespace neuroprint::linalg
