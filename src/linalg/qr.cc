#include "linalg/qr.h"

#include <cmath>
#include <vector>

#include "util/string_util.h"

namespace neuroprint::linalg {

Result<QrDecomposition> QrDecompose(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        StrFormat("QrDecompose requires rows >= cols, got %zux%zu", m, n));
  }
  if (n == 0) return QrDecomposition{Matrix(m, 0), Matrix(0, 0)};
  if (!a.AllFinite()) {
    return Status::InvalidArgument("QrDecompose: non-finite input");
  }

  // `work` accumulates the Householder vectors v_k in its lower trapezoid
  // (column k, rows k..m-1) while its strict upper part becomes R's
  // off-diagonal. R's diagonal entries are kept separately in `alpha`.
  //
  // Reflector applications are organized as two row-streaming passes over
  // the trailing submatrix (accumulate every column dot, then update every
  // column) instead of a column-at-a-time loop: row-major storage makes the
  // per-column form stride-n on every access, which is what used to make
  // this factorization slower than the SVD it preconditions. Each per-
  // column dot still sums in ascending row order, so the arithmetic is
  // unchanged.
  Matrix work = a;
  std::vector<double> beta(n, 0.0);
  std::vector<double> alpha(n, 0.0);
  std::vector<double> dots(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += work(i, k) * work(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;  // beta = alpha = 0; singular column.

    const double akk = work(k, k);
    const double alpha_k = akk >= 0.0 ? -norm : norm;
    const double vk = akk - alpha_k;
    double vnorm2 = vk * vk;
    for (std::size_t i = k + 1; i < m; ++i) vnorm2 += work(i, k) * work(i, k);
    alpha[k] = alpha_k;
    if (vnorm2 == 0.0) continue;  // x was already alpha * e1.
    beta[k] = 2.0 / vnorm2;
    work(k, k) = vk;

    // Apply H_k = I - beta v v^T to the trailing columns: dots[j] = v . col j
    // (ascending i), then col j -= (beta * dots[j]) * v.
    std::fill(dots.begin() + static_cast<std::ptrdiff_t>(k) + 1, dots.end(),
              0.0);
    for (std::size_t i = k; i < m; ++i) {
      const double vik = work(i, k);
      const double* wrow = work.RowPtr(i);
      for (std::size_t j = k + 1; j < n; ++j) dots[j] += vik * wrow[j];
    }
    for (std::size_t j = k + 1; j < n; ++j) dots[j] *= beta[k];
    for (std::size_t i = k; i < m; ++i) {
      const double vik = work(i, k);
      double* wrow = work.RowPtr(i);
      for (std::size_t j = k + 1; j < n; ++j) wrow[j] -= dots[j] * vik;
    }
  }

  QrDecomposition out;
  out.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.r(i, i) = alpha[i];
    for (std::size_t j = i + 1; j < n; ++j) out.r(i, j) = work(i, j);
  }

  // Thin Q = H_0 H_1 ... H_{n-1} * [I_n; 0], applied reflector-by-reflector
  // from the last to the first, with the same two-pass row streaming.
  out.q = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) out.q(j, j) = 1.0;
  for (std::size_t kk = n; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    if (beta[k] == 0.0) continue;
    std::fill(dots.begin(), dots.end(), 0.0);
    for (std::size_t i = k; i < m; ++i) {
      const double vik = work(i, k);
      const double* qrow = out.q.RowPtr(i);
      for (std::size_t j = 0; j < n; ++j) dots[j] += vik * qrow[j];
    }
    for (std::size_t j = 0; j < n; ++j) dots[j] *= beta[k];
    for (std::size_t i = k; i < m; ++i) {
      const double vik = work(i, k);
      double* qrow = out.q.RowPtr(i);
      for (std::size_t j = 0; j < n; ++j) qrow[j] -= dots[j] * vik;
    }
  }
  return out;
}

Result<Vector> SolveUpperTriangular(const Matrix& r, const Vector& b) {
  const std::size_t n = r.rows();
  if (r.cols() != n) {
    return Status::InvalidArgument("SolveUpperTriangular: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("SolveUpperTriangular: size mismatch");
  }
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= r(i, j) * x[j];
    const double d = r(i, i);
    if (std::fabs(d) < 1e-300) {
      return Status::FailedPrecondition(
          StrFormat("SolveUpperTriangular: zero pivot at %zu", i));
    }
    x[i] = sum / d;
  }
  return x;
}

Result<Vector> SolveLowerTriangular(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  if (l.cols() != n) {
    return Status::InvalidArgument("SolveLowerTriangular: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("SolveLowerTriangular: size mismatch");
  }
  Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l(i, j) * x[j];
    const double d = l(i, i);
    if (std::fabs(d) < 1e-300) {
      return Status::FailedPrecondition(
          StrFormat("SolveLowerTriangular: zero pivot at %zu", i));
    }
    x[i] = sum / d;
  }
  return x;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: size mismatch");
  }
  Result<QrDecomposition> qr = QrDecompose(a);
  if (!qr.ok()) return qr.status();
  const Vector qtb = MatTVec(qr->q, b);
  return SolveUpperTriangular(qr->r, qtb);
}

}  // namespace neuroprint::linalg
