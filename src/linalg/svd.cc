#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "linalg/bidiag.h"
#include "linalg/qr.h"
#include "linalg/vector_ops.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace neuroprint::linalg {
namespace {

// Direct-path inputs with min(m, n) at or above this use the blocked
// panel bidiagonalization (level-3 trailing updates on the tiled GEMM
// path) instead of the classic single-vector reduction. Below it the
// level-3 machinery costs more than it saves.
constexpr std::size_t kBlockedBidiagMinDim = 64;

// sqrt(a^2 + b^2) without destructive underflow or overflow.
double Pythag(double a, double b) {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

double SignOf(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

// Applies one Givens rotation to columns (ca, cb) of `mat`:
// (a, b) <- (a*c + b*s, b*c - a*s) per row. The update is elementwise
// per row, so the chunked parallel loop is bitwise identical to the
// serial one at any thread count.
void RotateColumns(Matrix& mat, std::size_t ca, std::size_t cb, double c,
                   double s, const ParallelContext& ctx) {
  ParallelFor(ctx, 0, mat.rows(), GrainForWork(4),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t r = lo; r < hi; ++r) {
                  double* row = mat.RowPtr(r);
                  const double a = row[ca];
                  const double b = row[cb];
                  row[ca] = a * c + b * s;
                  row[cb] = b * c - a * s;
                }
              });
}

// Diagonalizes an upper-bidiagonal form by implicit-shift QR (the
// Golub–Kahan–Reinsch iteration): on entry w holds the n diagonal
// entries, rv1 the superdiagonal shifted down one slot (rv1[i] =
// B(i-1, i), rv1[0] = 0), u (m x n) and v (n x n) the accumulated
// transformations. On exit w holds the unordered non-negative singular
// values and u/v the rotated vectors. Shared by the classic
// single-vector reduction and the blocked panel reduction.
Status DiagonalizeBidiagonal(Matrix& u, Vector& w, std::vector<double>& rv1,
                             Matrix& v, int max_its,
                             const ParallelContext& ctx) {
  const int m = static_cast<int>(u.rows());
  const int n = static_cast<int>(u.cols());
  const double eps = std::numeric_limits<double>::epsilon();
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) {
    anorm = std::max(anorm, std::fabs(w[static_cast<std::size_t>(i)]) +
                                std::fabs(rv1[static_cast<std::size_t>(i)]));
  }
  (void)m;

  std::uint64_t qr_its = 0;
  for (int k = n - 1; k >= 0; --k) {
    for (int its = 0;; ++its) {
      bool flag = true;
      int l = 0;
      int nm = 0;
      for (l = k; l >= 0; --l) {
        nm = l - 1;
        if (l == 0 || std::fabs(rv1[static_cast<std::size_t>(l)]) <=
                          eps * anorm) {
          flag = false;
          break;
        }
        if (std::fabs(w[static_cast<std::size_t>(nm)]) <= eps * anorm) break;
      }
      if (flag) {
        // Cancellation of rv1[l] when w[l-1] is negligible.
        double c = 0.0;
        double s = 1.0;
        for (int i = l; i < k + 1; ++i) {
          double f = s * rv1[static_cast<std::size_t>(i)];
          rv1[static_cast<std::size_t>(i)] =
              c * rv1[static_cast<std::size_t>(i)];
          if (std::fabs(f) <= eps * anorm) break;
          double g = w[static_cast<std::size_t>(i)];
          double h = Pythag(f, g);
          w[static_cast<std::size_t>(i)] = h;
          h = 1.0 / h;
          c = g * h;
          s = -f * h;
          RotateColumns(u, static_cast<std::size_t>(nm),
                        static_cast<std::size_t>(i), c, s, ctx);
        }
      }
      double z = w[static_cast<std::size_t>(k)];
      if (l == k) {
        // Convergence: make the singular value non-negative.
        if (z < 0.0) {
          w[static_cast<std::size_t>(k)] = -z;
          for (int j = 0; j < n; ++j) {
            v(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
                -v(static_cast<std::size_t>(j), static_cast<std::size_t>(k));
          }
        }
        break;
      }
      if (its >= max_its) {
        return Status::NotConverged(StrFormat(
            "SVD: no convergence for singular value %d after %d iterations",
            k, max_its));
      }
      ++qr_its;
      // Shift from the bottom 2x2 minor.
      double x = w[static_cast<std::size_t>(l)];
      const int nm2 = k - 1;
      double y = w[static_cast<std::size_t>(nm2)];
      double g = rv1[static_cast<std::size_t>(nm2)];
      double h = rv1[static_cast<std::size_t>(k)];
      double f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
      g = Pythag(f, 1.0);
      f = ((x - z) * (x + z) + h * ((y / (f + SignOf(g, f))) - h)) / x;
      double c = 1.0;
      double s = 1.0;
      // QR transformation.
      for (int j = l; j <= nm2; ++j) {
        const int i = j + 1;
        g = rv1[static_cast<std::size_t>(i)];
        y = w[static_cast<std::size_t>(i)];
        h = s * g;
        g = c * g;
        z = Pythag(f, h);
        rv1[static_cast<std::size_t>(j)] = z;
        c = f / z;
        s = h / z;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        RotateColumns(v, static_cast<std::size_t>(j),
                      static_cast<std::size_t>(i), c, s, ctx);
        z = Pythag(f, h);
        w[static_cast<std::size_t>(j)] = z;
        if (z != 0.0) {
          z = 1.0 / z;
          c = f * z;
          s = h * z;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        RotateColumns(u, static_cast<std::size_t>(j),
                      static_cast<std::size_t>(i), c, s, ctx);
      }
      rv1[static_cast<std::size_t>(l)] = 0.0;
      rv1[static_cast<std::size_t>(k)] = f;
      w[static_cast<std::size_t>(k)] = x;
    }
  }
  // Runs exactly once per bidiagonal diagonalization (the
  // QR-preconditioned path recurses with force_direct before reaching
  // here), so this is the true shifted-QR work count.
  metrics::Count("svd.qr_iterations", qr_its);
  return Status::OK();
}

// Golub–Kahan–Reinsch SVD for m >= n. `u` holds A on entry and the left
// singular vectors (m x n) on exit; `w` gets the n singular values; `v` the
// right singular vectors (n x n). Classic algorithm (Golub & Reinsch 1970,
// as popularized by EISPACK/Numerical Recipes), 0-based.
Status GolubReinsch(Matrix& u, Vector& w, Matrix& v, int max_its,
                    const ParallelContext& ctx) {
  const int m = static_cast<int>(u.rows());
  const int n = static_cast<int>(u.cols());
  w.assign(static_cast<std::size_t>(n), 0.0);
  v = Matrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  std::vector<double> rv1(static_cast<std::size_t>(n), 0.0);

  double g = 0.0, scale = 0.0, s = 0.0;
  int l = 0;

  // Householder reduction to bidiagonal form.
  for (int i = 0; i < n; ++i) {
    l = i + 2;
    rv1[i] = scale * g;
    g = s = scale = 0.0;
    if (i < m) {
      for (int k = i; k < m; ++k) scale += std::fabs(u(k, i));
      if (scale != 0.0) {
        for (int k = i; k < m; ++k) {
          u(k, i) /= scale;
          s += u(k, i) * u(k, i);
        }
        double f = u(i, i);
        g = -SignOf(std::sqrt(s), f);
        const double h = f * g - s;
        u(i, i) = f - g;
        for (int j = l - 1; j < n; ++j) {
          s = 0.0;
          for (int k = i; k < m; ++k) s += u(k, i) * u(k, j);
          f = s / h;
          for (int k = i; k < m; ++k) u(k, j) += f * u(k, i);
        }
        for (int k = i; k < m; ++k) u(k, i) *= scale;
      }
    }
    w[i] = scale * g;
    g = s = scale = 0.0;
    if (i + 1 <= m && i + 1 != n) {
      for (int k = l - 1; k < n; ++k) scale += std::fabs(u(i, k));
      if (scale != 0.0) {
        for (int k = l - 1; k < n; ++k) {
          u(i, k) /= scale;
          s += u(i, k) * u(i, k);
        }
        double f = u(i, l - 1);
        g = -SignOf(std::sqrt(s), f);
        const double h = f * g - s;
        u(i, l - 1) = f - g;
        for (int k = l - 1; k < n; ++k) rv1[k] = u(i, k) / h;
        for (int j = l - 1; j < m; ++j) {
          s = 0.0;
          for (int k = l - 1; k < n; ++k) s += u(j, k) * u(i, k);
          for (int k = l - 1; k < n; ++k) u(j, k) += s * rv1[k];
        }
        for (int k = l - 1; k < n; ++k) u(i, k) *= scale;
      }
    }
  }

  // Accumulation of right-hand transformations.
  for (int i = n - 1; i >= 0; --i) {
    if (i < n - 1) {
      if (g != 0.0) {
        for (int j = l; j < n; ++j) v(j, i) = (u(i, j) / u(i, l)) / g;
        for (int j = l; j < n; ++j) {
          s = 0.0;
          for (int k = l; k < n; ++k) s += u(i, k) * v(k, j);
          for (int k = l; k < n; ++k) v(k, j) += s * v(k, i);
        }
      }
      for (int j = l; j < n; ++j) v(i, j) = v(j, i) = 0.0;
    }
    v(i, i) = 1.0;
    g = rv1[i];
    l = i;
  }

  // Accumulation of left-hand transformations.
  for (int i = std::min(m, n) - 1; i >= 0; --i) {
    l = i + 1;
    g = w[i];
    for (int j = l; j < n; ++j) u(i, j) = 0.0;
    if (g != 0.0) {
      g = 1.0 / g;
      for (int j = l; j < n; ++j) {
        s = 0.0;
        for (int k = l; k < m; ++k) s += u(k, i) * u(k, j);
        const double f = (s / u(i, i)) * g;
        for (int k = i; k < m; ++k) u(k, j) += f * u(k, i);
      }
      for (int j = i; j < m; ++j) u(j, i) *= g;
    } else {
      for (int j = i; j < m; ++j) u(j, i) = 0.0;
    }
    ++u(i, i);
  }

  return DiagonalizeBidiagonal(u, w, rv1, v, max_its, ctx);
}

// Sorts singular values into descending order, permuting the columns of U
// and V to match.
void SortDescending(SvdDecomposition& d) {
  const std::size_t k = d.s.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d.s[a] > d.s[b]; });

  Vector sorted_s(k);
  Matrix sorted_u(d.u.rows(), k);
  Matrix sorted_v(d.v.rows(), k);
  for (std::size_t out = 0; out < k; ++out) {
    const std::size_t in = order[out];
    sorted_s[out] = d.s[in];
    for (std::size_t i = 0; i < d.u.rows(); ++i) sorted_u(i, out) = d.u(i, in);
    for (std::size_t i = 0; i < d.v.rows(); ++i) sorted_v(i, out) = d.v(i, in);
  }
  d.s = std::move(sorted_s);
  d.u = std::move(sorted_u);
  d.v = std::move(sorted_v);
}

Result<SvdDecomposition> SvdTall(const Matrix& a, const SvdOptions& options) {
  // a has rows >= cols here.
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  if (!options.force_direct &&
      static_cast<double>(m) >=
          options.qr_precondition_ratio * static_cast<double>(n) &&
      n > 0) {
    // Tall-skinny fast path: A = Q R, SVD(R) = Ur S V^T, so
    // A = (Q Ur) S V^T exactly.
    Result<QrDecomposition> qr = QrDecompose(a);
    if (!qr.ok()) return qr.status();
    SvdOptions inner = options;
    inner.force_direct = true;
    Result<SvdDecomposition> rsvd = SvdTall(qr->r, inner);
    if (!rsvd.ok()) return rsvd.status();
    SvdDecomposition out;
    out.u = MatMul(qr->q, rsvd->u, options.parallel);
    out.s = std::move(rsvd->s);
    out.v = std::move(rsvd->v);
    out.qr_preconditioned = true;
    out.blocked_bidiag = rsvd->blocked_bidiag;
    return out;
  }

  SvdDecomposition d;
  if (options.bidiag_panel != 1 && n >= kBlockedBidiagMinDim) {
    // Blocked panel bidiagonalization: the trailing-matrix work runs as
    // level-3 products on the tiled GEMM path, then the shared QR
    // iteration diagonalizes the explicit U B V^T factorization.
    BidiagOptions bopt;
    bopt.panel = options.bidiag_panel;
    bopt.parallel = options.parallel;
    Result<BidiagFactorization> f = BlockedBidiagonalize(a, bopt);
    if (!f.ok()) return f.status();
    std::vector<double> rv1(n, 0.0);
    for (std::size_t i = 0; i + 1 < n; ++i) rv1[i + 1] = f->e[i];
    d.u = std::move(f->u);
    d.s = std::move(f->d);
    d.v = std::move(f->v);
    d.blocked_bidiag = true;
    metrics::Count("svd.blocked_bidiag", 1);
    const Status status =
        DiagonalizeBidiagonal(d.u, d.s, rv1, d.v,
                              options.max_iterations_per_value,
                              options.parallel);
    if (!status.ok()) return status;
  } else {
    d.u = a;
    const Status status = GolubReinsch(
        d.u, d.s, d.v, options.max_iterations_per_value, options.parallel);
    if (!status.ok()) return status;
  }
  SortDescending(d);
  return d;
}

}  // namespace

Matrix SvdDecomposition::Reconstruct() const {
  Matrix us = u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= s[j];
  }
  return MatMulT(us, v);
}

std::size_t SvdDecomposition::Rank(double rel_tol) const {
  if (s.empty() || s[0] <= 0.0) return 0;
  const double cutoff = rel_tol * s[0];
  std::size_t rank = 0;
  for (double value : s) {
    if (value > cutoff) ++rank;
  }
  return rank;
}

Result<SvdDecomposition> Svd(const Matrix& a, const SvdOptions& options) {
  NP_TRACE_SCOPE("linalg.svd");
  metrics::Count("svd.calls", 1);
  if (!a.AllFinite()) {
    return Status::InvalidArgument("Svd: non-finite input");
  }
  if (a.rows() == 0 || a.cols() == 0) {
    SvdDecomposition d;
    d.u = Matrix(a.rows(), 0);
    d.v = Matrix(a.cols(), 0);
    return d;
  }
  if (a.rows() >= a.cols()) {
    Result<SvdDecomposition> d = SvdTall(a, options);
    if (d.ok() && d->qr_preconditioned) {
      metrics::Count("svd.qr_preconditioned", 1);
    }
    return d;
  }

  // Wide input: SVD of A^T swaps the roles of U and V.
  Result<SvdDecomposition> t = SvdTall(a.Transposed(), options);
  if (!t.ok()) return t.status();
  SvdDecomposition d;
  d.u = std::move(t->v);
  d.s = std::move(t->s);
  d.v = std::move(t->u);
  d.qr_preconditioned = t->qr_preconditioned;
  d.blocked_bidiag = t->blocked_bidiag;
  if (d.qr_preconditioned) metrics::Count("svd.qr_preconditioned", 1);
  return d;
}

Result<SvdDecomposition> JacobiSvd(const Matrix& a, int max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("JacobiSvd requires rows >= cols");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("JacobiSvd: non-finite input");
  }

  // Hestenes one-sided Jacobi: orthogonalize the columns of W = A V by
  // plane rotations; singular values are the final column norms.
  Matrix w = a;
  Matrix v = Matrix::Identity(n);
  const double eps = std::numeric_limits<double>::epsilon();

  bool converged = n < 2;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) || gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            SignOf(1.0, zeta) / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NotConverged(
        StrFormat("JacobiSvd: not converged after %d sweeps", max_sweeps));
  }

  SvdDecomposition d;
  d.s.assign(n, 0.0);
  d.u = Matrix(m, n);
  d.v = std::move(v);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    d.s[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) d.u(i, j) = w(i, j) / norm;
    }
  }
  SortDescending(d);
  return d;
}

Result<Vector> SingularValues(const Matrix& a) {
  Result<SvdDecomposition> d = Svd(a);
  if (!d.ok()) return d.status();
  return std::move(d->s);
}

Result<Matrix> PseudoInverse(const Matrix& a, double rel_tol) {
  Result<SvdDecomposition> d = Svd(a);
  if (!d.ok()) return d.status();
  const double cutoff = d->s.empty() ? 0.0 : rel_tol * d->s[0];
  // pinv(A) = V diag(1/s) U^T.
  Matrix vs = d->v;
  for (std::size_t j = 0; j < vs.cols(); ++j) {
    const double inv = d->s[j] > cutoff ? 1.0 / d->s[j] : 0.0;
    for (std::size_t i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  return MatMulT(vs, d->u);
}

}  // namespace neuroprint::linalg
