#include "linalg/bidiag.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/gemm_kernel.h"
#include "linalg/simd/simd.h"
#include "util/trace.h"

namespace neuroprint::linalg {
namespace {

double SignOf(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

// Householder generation on v[0..len): on return H = I - tau w w^T with
// w = [1; v[1..len)] maps the input vector to beta * e1. v[0] is set to
// the implicit 1. The vector is pre-scaled by its max magnitude so the
// sum of squares can neither overflow nor lose everything to underflow
// (same defense the classic scaled reduction uses).
void HouseholderReflector(double* v, std::size_t len, double* beta,
                          double* tau) {
  const simd::Ops& ops = simd::ActiveOps();
  double amax = 0.0;
  for (std::size_t i = 0; i < len; ++i) amax = std::max(amax, std::fabs(v[i]));
  if (amax == 0.0) {
    *beta = 0.0;
    *tau = 0.0;
    if (len > 0) v[0] = 1.0;
    return;
  }
  for (std::size_t i = 0; i < len; ++i) v[i] /= amax;
  const double alpha = v[0];
  const double norm = std::sqrt(ops.nrm2sq(v, len));
  const double b = -SignOf(norm, alpha);
  *tau = (b - alpha) / b;
  const double inv = 1.0 / (alpha - b);
  for (std::size_t i = 1; i < len; ++i) v[i] *= inv;
  v[0] = 1.0;
  *beta = b * amax;
}

// One dlabrd-style panel over columns [i0, i0 + nb) of the matrix whose
// transpose is `tmat` (n x m). Householder vectors overwrite tmat in
// place (column reflectors in tmat rows, row reflectors in tmat
// columns, unit heads stored as literal 1s); d/e/tauq/taup collect the
// bidiagonal and reflector scalars. xt/yt (nb x (m - i0), nb x (n - i0),
// zero-initialized) receive the transposed X and Y blocks of the panel
// update A22 -= Up * Y2^T + X2 * Rp, applied by the caller as level-3
// products.
void PanelBidiagonalize(Matrix& tmat, std::size_t i0, std::size_t nb,
                        std::vector<double>& tauq, std::vector<double>& taup,
                        Vector& d, Vector& e, Matrix& xt, Matrix& yt,
                        const ParallelContext& ctx) {
  const std::size_t n = tmat.rows();
  const std::size_t m = tmat.cols();
  const simd::Ops& ops = simd::ActiveOps();
  std::vector<double> aux(nb, 0.0);
  std::vector<double> head(nb, 0.0);
  std::vector<double> wvec, y1, x1;

  for (std::size_t t = 0; t < nb; ++t) {
    const std::size_t j = i0 + t;
    double* colj = tmat.RowPtr(j);  // Column j of A, contiguous here.

    // Apply the panel's previous reflectors to column j (rows [j, m)).
    for (std::size_t s = 0; s < t; ++s) {
      ops.axpy(-yt(s, t), tmat.RowPtr(i0 + s) + j, colj + j, m - j);
      ops.axpy(-colj[i0 + s], xt.RowPtr(s) + (j - i0), colj + j, m - j);
    }

    // Column (left) reflector; unit head stays in the matrix.
    HouseholderReflector(colj + j, m - j, &d[j], &tauq[j]);

    if (j + 1 == n) {
      taup[j] = 0.0;  // Last column: no row reflector, G_j = I.
      continue;
    }
    const std::size_t ntail = n - j - 1;  // Trailing columns (j, n).
    const std::size_t mtail = m - j - 1;  // Trailing rows (j, m).

    // y_t = tauq * (A22^T u - corrections), the first of the two
    // level-2 products that touch the whole trailing matrix.
    y1.assign(ntail, 0.0);
    ParallelFor(ctx, j + 1, n, GrainForWork(m - j),
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t q = lo; q < hi; ++q) {
                    y1[q - j - 1] = ops.dot(tmat.RowPtr(q) + j, colj + j, m - j);
                  }
                });
    for (std::size_t s = 0; s < t; ++s) {
      aux[s] = ops.dot(tmat.RowPtr(i0 + s) + j, colj + j, m - j);
    }
    for (std::size_t s = 0; s < t; ++s) {
      ops.axpy(-aux[s], yt.RowPtr(s) + (t + 1), y1.data(), ntail);
    }
    for (std::size_t s = 0; s < t; ++s) {
      aux[s] = ops.dot(xt.RowPtr(s) + (j - i0), colj + j, m - j);
    }
    if (t > 0) {
      for (std::size_t q = j + 1; q < n; ++q) {
        const double* rowq = tmat.RowPtr(q);
        double acc = 0.0;
        for (std::size_t s = 0; s < t; ++s) acc += aux[s] * rowq[i0 + s];
        y1[q - j - 1] -= acc;
      }
    }
    for (std::size_t q = 0; q < ntail; ++q) y1[q] *= tauq[j];
    std::copy(y1.begin(), y1.end(), yt.RowPtr(t) + (t + 1));

    // Update row j of A (strided in tmat, but only length n - j - 1).
    for (std::size_t s = 0; s <= t; ++s) head[s] = tmat(i0 + s, j);
    for (std::size_t q = j + 1; q < n; ++q) {
      double* rowq = tmat.RowPtr(q);
      double acc = 0.0;
      for (std::size_t s = 0; s <= t; ++s) acc += yt(s, q - i0) * head[s];
      for (std::size_t s = 0; s < t; ++s) {
        acc += rowq[i0 + s] * xt(s, j - i0);
      }
      rowq[j] -= acc;
    }

    // Row (right) reflector, generated on a contiguous copy and written
    // back with its unit head.
    wvec.assign(ntail, 0.0);
    for (std::size_t q = j + 1; q < n; ++q) wvec[q - j - 1] = tmat(q, j);
    HouseholderReflector(wvec.data(), ntail, &e[j], &taup[j]);
    for (std::size_t q = j + 1; q < n; ++q) tmat(q, j) = wvec[q - j - 1];

    // x_t = taup * (A22 w - corrections), the second trailing-matrix
    // product: chunks own disjoint output slices and fold the rows of
    // the trailing matrix in ascending order, so the accumulation order
    // per element matches the serial loop exactly.
    x1.assign(mtail, 0.0);
    ParallelFor(ctx, j + 1, m, GrainForWork(ntail),
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t q = j + 1; q < n; ++q) {
                    ops.axpy(wvec[q - j - 1], tmat.RowPtr(q) + lo,
                             x1.data() + (lo - j - 1), hi - lo);
                  }
                });
    for (std::size_t s = 0; s <= t; ++s) {
      aux[s] = ops.dot(yt.RowPtr(s) + (t + 1), wvec.data(), ntail);
    }
    for (std::size_t s = 0; s <= t; ++s) {
      ops.axpy(-aux[s], tmat.RowPtr(i0 + s) + j + 1, x1.data(), mtail);
    }
    if (t > 0) {
      std::fill(aux.begin(), aux.begin() + static_cast<std::ptrdiff_t>(t),
                0.0);
      for (std::size_t q = j + 1; q < n; ++q) {
        const double* rowq = tmat.RowPtr(q);
        const double wq = wvec[q - j - 1];
        for (std::size_t s = 0; s < t; ++s) aux[s] += rowq[i0 + s] * wq;
      }
      for (std::size_t s = 0; s < t; ++s) {
        ops.axpy(-aux[s], xt.RowPtr(s) + (t + 1), x1.data(), mtail);
      }
    }
    for (std::size_t k = 0; k < mtail; ++k) x1[k] *= taup[j];
    std::copy(x1.begin(), x1.end(), xt.RowPtr(t) + (t + 1));
  }
}

// Upper-triangular T factor of the forward block reflector
// H_0 H_1 ... H_{nb-1} = I - W^T T W (dlarft, forward / rowwise: row s
// of `w` is the s-th reflector vector, unit head at column s, zeros
// before). A zero tau yields an all-zero row and column — that
// reflector drops out of the block product.
Matrix BuildForwardT(const Matrix& w, const double* taus) {
  const std::size_t nb = w.rows();
  const std::size_t len = w.cols();
  const simd::Ops& ops = simd::ActiveOps();
  Matrix tf(nb, nb);
  std::vector<double> vv(nb, 0.0);
  for (std::size_t s = 0; s < nb; ++s) {
    const double tau = taus[s];
    if (tau == 0.0) continue;
    for (std::size_t r = 0; r < s; ++r) {
      vv[r] = ops.dot(w.RowPtr(r) + s, w.RowPtr(s) + s, len - s);
    }
    for (std::size_t r = 0; r < s; ++r) {
      double acc = 0.0;
      for (std::size_t r2 = r; r2 < s; ++r2) acc += tf(r, r2) * vv[r2];
      tf(r, s) = -tau * acc;
    }
    tf(s, s) = tau;
  }
  return tf;
}

// out_rows [row0, row0 + sub.rows()) of `out` -= sub, row-parallel.
void SubtractRows(Matrix& out, std::size_t row0, const Matrix& sub,
                  const ParallelContext& ctx) {
  ParallelFor(ctx, 0, sub.rows(), GrainForWork(sub.cols()),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t r = lo; r < hi; ++r) {
                  double* dst = out.RowPtr(row0 + r);
                  const double* src = sub.RowPtr(r);
                  for (std::size_t c = 0; c < sub.cols(); ++c) {
                    dst[c] -= src[c];
                  }
                }
              });
}

// acc_rows([row0, ...)) of `q` <- (I - W^T T W) * those rows, i.e.
// q_sub -= W^T * (T * (W * q_sub)): three tiled GEMMs. `w` is nb x len
// (reflector vectors as rows, spanning q rows [row0, row0 + len)).
void ApplyBlockReflector(const Matrix& w, const Matrix& tf, Matrix& q,
                         std::size_t row0, const ParallelContext& ctx) {
  const std::size_t len = w.cols();
  const std::size_t nb = w.rows();
  const std::size_t cols = q.cols();
  const Matrix qsub = q.Block(row0, 0, len, cols);
  Matrix w1(nb, cols);
  TiledGemm(w, false, qsub, false, &w1, ctx);
  Matrix w2(nb, cols);
  TiledGemm(tf, false, w1, false, &w2, ctx);
  Matrix m3(len, cols);
  TiledGemm(w, true, w2, false, &m3, ctx);
  SubtractRows(q, row0, m3, ctx);
}

}  // namespace

Result<BidiagFactorization> BlockedBidiagonalize(const Matrix& a,
                                                 const BidiagOptions& options) {
  NP_TRACE_SCOPE("linalg.bidiag");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        "BlockedBidiagonalize requires rows >= cols");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("BlockedBidiagonalize: non-finite input");
  }
  BidiagFactorization f;
  f.u = Matrix(m, n);
  f.v = Matrix::Identity(n);
  f.d.assign(n, 0.0);
  f.e.assign(n >= 2 ? n - 1 : 0, 0.0);
  if (n == 0) return f;

  const std::size_t nb =
      std::min(options.panel == 0 ? std::size_t{32} : options.panel, n);
  const ParallelContext& ctx = options.parallel;
  Matrix tmat = a.Transposed();
  std::vector<double> tauq(n, 0.0);
  std::vector<double> taup(n, 0.0);

  std::vector<std::size_t> panel_starts;
  for (std::size_t i0 = 0; i0 < n; i0 += nb) panel_starts.push_back(i0);

  // Reduction: factor each panel, then one rank-2*nb level-3 update of
  // the trailing matrix (in transposed layout: T22 -= Y2 Up^T + Rp X2^T).
  for (const std::size_t i0 : panel_starts) {
    const std::size_t nb_eff = std::min(nb, n - i0);
    Matrix xt(nb_eff, m - i0);
    Matrix yt(nb_eff, n - i0);
    PanelBidiagonalize(tmat, i0, nb_eff, tauq, taup, f.d, f.e, xt, yt, ctx);
    const std::size_t i2 = i0 + nb_eff;
    if (i2 >= n) continue;
    const Matrix yt_sub = yt.Block(0, nb_eff, nb_eff, n - i2);
    const Matrix up_t = tmat.Block(i0, i2, nb_eff, m - i2);
    const Matrix rp_t = tmat.Block(i2, i0, n - i2, nb_eff);
    const Matrix xt_sub = xt.Block(0, nb_eff, nb_eff, m - i2);
    Matrix m1(n - i2, m - i2);
    Matrix m2(n - i2, m - i2);
    TiledGemm(yt_sub, true, up_t, false, &m1, ctx);
    TiledGemm(rp_t, false, xt_sub, false, &m2, ctx);
    ParallelFor(ctx, i2, n, GrainForWork(m - i2),
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t q = lo; q < hi; ++q) {
                    double* rowq = tmat.RowPtr(q);
                    const double* r1 = m1.RowPtr(q - i2);
                    const double* r2 = m2.RowPtr(q - i2);
                    for (std::size_t k = i2; k < m; ++k) {
                      rowq[k] = (rowq[k] - r1[k - i2]) - r2[k - i2];
                    }
                  }
                });
  }

  // Accumulate U = (H_0 ... H_{n-1}) E_n and V = (G_0 ... G_{n-2}) I_n
  // by applying the block reflectors backward (last panel first), each
  // as three level-3 products.
  for (std::size_t q = 0; q < n; ++q) f.u(q, q) = 1.0;
  for (std::size_t p = panel_starts.size(); p-- > 0;) {
    const std::size_t i0 = panel_starts[p];
    const std::size_t nb_eff = std::min(nb, n - i0);

    // Column reflectors -> U. Vector s lives in tmat row i0 + s from
    // column i0 + s on (head already a literal 1); entries before the
    // head hold unrelated row-reflector data and are masked off.
    Matrix vt(nb_eff, m - i0);
    for (std::size_t s = 0; s < nb_eff; ++s) {
      const double* src = tmat.RowPtr(i0 + s) + i0;
      double* dst = vt.RowPtr(s);
      std::copy(src + s, src + (m - i0), dst + s);
    }
    ApplyBlockReflector(vt, BuildForwardT(vt, &tauq[i0]), f.u, i0, ctx);

    // Row reflectors -> V (rows [i0 + 1, n)). Vector s is tmat column
    // i0 + s below the diagonal (strided, but only length < n).
    if (n - i0 >= 2) {
      const std::size_t rows_v = n - i0 - 1;
      Matrix wt(nb_eff, rows_v);
      for (std::size_t q = i0 + 1; q < n; ++q) {
        const double* rowq = tmat.RowPtr(q);
        const std::size_t s_hi = std::min(nb_eff, q - i0);
        for (std::size_t s = 0; s < s_hi; ++s) {
          if (taup[i0 + s] != 0.0) wt(s, q - i0 - 1) = rowq[i0 + s];
        }
      }
      ApplyBlockReflector(wt, BuildForwardT(wt, &taup[i0]), f.v, i0 + 1, ctx);
    }
  }
  return f;
}

}  // namespace neuroprint::linalg
