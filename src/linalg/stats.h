// Matrix-level statistics: row/column moments, z-scoring, covariance and
// Pearson correlation matrices. These are the primitives the connectome
// builder and the matcher are written in terms of.

#ifndef NEUROPRINT_LINALG_STATS_H_
#define NEUROPRINT_LINALG_STATS_H_

#include "linalg/matrix.h"

namespace neuroprint::linalg {

/// Mean of each row (length rows()).
Vector RowMeans(const Matrix& m);

/// Mean of each column (length cols()).
Vector ColMeans(const Matrix& m);

/// Sample standard deviation (n-1) of each row.
Vector RowStdDevs(const Matrix& m);

/// Z-scores every row in place ((x - mean) / sd per row); constant rows
/// become all zeros. This is the paper's normalization of voxel/region
/// time-series matrices (rows are signals, columns are time points).
void ZScoreRowsInPlace(Matrix& m, const ParallelContext& ctx = {});

/// Z-scores every column in place.
void ZScoreColsInPlace(Matrix& m);

/// Squared L2 norm of each row (the l2 sampling weights of Eq. 1).
Vector RowNormsSquared(const Matrix& m);

/// Sample covariance of the rows-as-variables layout: m is
/// variables x observations; result is variables x variables.
Matrix RowCovariance(const Matrix& m);

/// Pearson correlation matrix of the rows of `m` (variables x observations
/// layout). Rows with zero variance correlate 0 with everything and 1 with
/// themselves. This is the connectome kernel: rows are region time series.
Matrix RowCorrelation(const Matrix& m, const ParallelContext& ctx = {});

/// Pearson correlation between every column of `a` and every column of `b`
/// (both feature-major: features x items). Result is a.cols() x b.cols().
/// This is the cross-dataset similarity matrix of the attack.
Matrix ColumnCrossCorrelation(const Matrix& a, const Matrix& b,
                              const ParallelContext& ctx = {});

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_STATS_H_
