#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd/simd.h"

// The reductions here dispatch to the SIMD layer, whose canonical
// lane-split order (four interleaved partial sums, folded left to right)
// is bit-identical on every ISA — see linalg/simd/simd.h.

namespace neuroprint::linalg {

double Dot(const Vector& x, const Vector& y) {
  NP_CHECK_EQ(x.size(), y.size());
  return simd::ActiveOps().dot(x.data(), y.data(), x.size());
}

double Norm2(const Vector& x) { return std::sqrt(Norm2Squared(x)); }

double Norm2Squared(const Vector& x) {
  return simd::ActiveOps().nrm2sq(x.data(), x.size());
}

double Norm1(const Vector& x) {
  double sum = 0.0;
  for (double v : x) sum += std::fabs(v);
  return sum;
}

double NormInf(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

void Axpy(double alpha, const Vector& x, Vector& y) {
  NP_CHECK_EQ(x.size(), y.size());
  simd::ActiveOps().axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

double NormalizeInPlace(Vector& x) {
  const double n = Norm2(x);
  if (n > 0.0) Scale(1.0 / n, x);
  return n;
}

double Mean(const Vector& x) {
  if (x.empty()) return 0.0;
  return simd::ActiveOps().sum(x.data(), x.size()) /
         static_cast<double>(x.size());
}

double Variance(const Vector& x) {
  if (x.size() < 2) return 0.0;
  const double mu = Mean(x);
  return simd::ActiveOps().css(x.data(), x.size(), mu) /
         static_cast<double>(x.size() - 1);
}

double StdDev(const Vector& x) { return std::sqrt(Variance(x)); }

double PearsonCorrelation(const Vector& x, const Vector& y) {
  NP_CHECK_EQ(x.size(), y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  simd::ActiveOps().corr_moments(x.data(), y.data(), n, mx, my, &sxy, &sxx,
                                 &syy);
  // NaN-safe degenerate check: a non-finite input poisons the sums, and
  // NaN fails `<= 0.0`, so test the inverted predicate instead.
  if (!(sxx > 0.0) || !(syy > 0.0) || !std::isfinite(sxx) ||
      !std::isfinite(syy)) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

void CenterInPlace(Vector& x) {
  const double mu = Mean(x);
  for (double& v : x) v -= mu;
}

void ZScoreInPlace(Vector& x) {
  const double mu = Mean(x);
  const double sd = StdDev(x);
  if (!std::isfinite(sd) || sd <= 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return;
  }
  for (double& v : x) v = (v - mu) / sd;
}

Vector Add(const Vector& x, const Vector& y) {
  NP_CHECK_EQ(x.size(), y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

Vector Subtract(const Vector& x, const Vector& y) {
  NP_CHECK_EQ(x.size(), y.size());
  Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

}  // namespace neuroprint::linalg
