#include "linalg/cholesky.h"

#include <cmath>

#include "linalg/qr.h"
#include "util/string_util.h"

namespace neuroprint::linalg {

Result<Matrix> CholeskyDecompose(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("CholeskyDecompose: matrix not square");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("CholeskyDecompose: non-finite input");
  }
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(StrFormat(
          "CholeskyDecompose: not positive definite at column %zu "
          "(pivot %.3e)",
          j, diag));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return l;
}

Result<Matrix> CholeskyDecomposeWithJitter(const Matrix& a, double jitter) {
  Matrix shifted = a;
  for (std::size_t i = 0; i < shifted.rows() && i < shifted.cols(); ++i) {
    shifted(i, i) += jitter;
  }
  return CholeskyDecompose(shifted);
}

Result<Vector> CholeskySolve(const Matrix& l, const Vector& b) {
  Result<Vector> y = SolveLowerTriangular(l, b);
  if (!y.ok()) return y.status();
  return SolveUpperTriangular(l.Transposed(), *y);
}

}  // namespace neuroprint::linalg
