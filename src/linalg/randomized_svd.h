// Randomized range-finder SVD (Halko, Martinsson & Tropp 2011).
//
// For a matrix whose spectrum decays — the paper's group matrices do — the
// dominant rank-k subspace can be captured by multiplying A with a small
// Gaussian test matrix and orthonormalizing: Y = A Omega spans the top
// singular directions up to oversampling error, and q power iterations
// (with re-orthonormalization between applications to keep the basis from
// collapsing onto the leading direction) sharpen the capture for slowly
// decaying spectra. The whole computation is GEMM-shaped, so it rides the
// tiled kernels and the thread pool, unlike the serial Householder
// bidiagonalization inside the exact Svd().
//
// Determinism: the test matrix is drawn from the seeded PCG64 Rng, and all
// linear algebra goes through the bitwise-deterministic kernels, so a fixed
// (input, options) pair gives bit-identical results at any thread count.

#ifndef NEUROPRINT_LINALG_RANDOMIZED_SVD_H_
#define NEUROPRINT_LINALG_RANDOMIZED_SVD_H_

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/status.h"

namespace neuroprint::linalg {

struct RandomizedSvdOptions {
  /// Target rank k of the approximation. Required (> 0). If the sketch
  /// width k + oversample reaches min(rows, cols), the sketch cannot be
  /// cheaper than an exact decomposition, so the exact Svd() runs instead
  /// (truncated to k).
  std::size_t rank = 0;
  /// Extra sketch columns beyond the target rank; the classic p ~ 5-10
  /// buys the (1 + sqrt(k/p)) spectral-error factor of Halko et al.
  std::size_t oversample = 8;
  /// Power (subspace) iterations q: each one multiplies the spectral decay
  /// seen by the sketch by another factor of sigma_i^2, at the cost of two
  /// more passes over A. 0-2 is the useful range.
  int power_iterations = 1;
  /// Seed for the Gaussian test matrix; equal seeds give equal results.
  std::uint64_t seed = 0x72616e64737664ULL;
  /// Thread knob for the underlying kernels (never changes results).
  ParallelContext parallel;
};

/// Rank-k approximate thin SVD: u is rows x k, s has k entries
/// (descending), v is cols x k. The leading singular values/vectors
/// converge to the exact ones as oversample/power_iterations grow; the
/// trailing ones are approximations from the sketched subspace.
Result<SvdDecomposition> RandomizedSvd(const Matrix& a,
                                       const RandomizedSvdOptions& options);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_RANDOMIZED_SVD_H_
