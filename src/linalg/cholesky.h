// Cholesky factorization of symmetric positive-definite matrices.
//
// The cohort simulator uses L from Sigma = L L^T to draw correlated region
// time series; the SVR and regression code uses CholeskySolve for normal
// equations.

#ifndef NEUROPRINT_LINALG_CHOLESKY_H_
#define NEUROPRINT_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::linalg {

/// Lower-triangular L with A = L L^T. Fails with FailedPrecondition if A is
/// not (numerically) positive definite.
Result<Matrix> CholeskyDecompose(const Matrix& a);

/// CholeskyDecompose(A + jitter * I): convenience for covariance matrices
/// assembled from data that may be only positive semi-definite.
Result<Matrix> CholeskyDecomposeWithJitter(const Matrix& a, double jitter);

/// Solves A x = b given the Cholesky factor L of A (forward + back
/// substitution).
Result<Vector> CholeskySolve(const Matrix& l, const Vector& b);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_CHOLESKY_H_
