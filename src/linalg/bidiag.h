// Blocked Householder bidiagonalization (the LAPACK dgebrd/dlabrd
// scheme): A = U B V^T with B upper bidiagonal, U (m x n) and V (n x n)
// having orthonormal columns.
//
// The classic single-vector reduction applies every reflector to the
// whole trailing matrix immediately — O(n) full-matrix sweeps of
// level-2 work. The blocked scheme factors a panel of `panel` columns
// while touching the trailing matrix only through two matrix-vector
// products per column (accumulated in the auxiliary X and Y blocks),
// then applies the panel's rank-2*panel update to the trailing matrix
// as two level-3 products on the tiled GEMM path, where the thread pool
// and the SIMD micro-kernels do the heavy lifting.
//
// Internally the reduction runs on the *transpose* of A (n x m,
// row-major): a column Householder vector of A is then a contiguous row,
// so the hot level-2 products (y = A22^T u, x = A22 w) stream rows
// through the dispatched simd::Ops kernels instead of striding down
// columns. Only short (length <= n) accesses stay strided.
//
// Determinism: every loop order, chunk boundary, and reduction order is
// a pure function of the shape (never of the thread count), and all
// per-element arithmetic goes through the canonical simd lane-split /
// tiled-GEMM orders, so the factorization is bitwise identical at any
// thread count and on every dispatched ISA.

#ifndef NEUROPRINT_LINALG_BIDIAG_H_
#define NEUROPRINT_LINALG_BIDIAG_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace neuroprint::linalg {

struct BidiagOptions {
  /// Panel width. 0 picks the default (32). Width 1 degenerates to an
  /// unblocked (but still level-3-free) reduction; useful in tests.
  std::size_t panel = 0;
  /// Thread knob for the GEMM-shaped steps (never changes results).
  ParallelContext parallel;
};

/// A = u * Bidiagonal(d, e) * v^T for an m x n input with m >= n:
/// u is m x n with orthonormal columns, v is n x n orthogonal,
/// d[i] = B(i, i) and e[i] = B(i, i + 1).
struct BidiagFactorization {
  Matrix u;
  Vector d;
  Vector e;  ///< n - 1 entries; empty when n < 2.
  Matrix v;
};

/// Fails with InvalidArgument if rows < cols or the input is non-finite.
Result<BidiagFactorization> BlockedBidiagonalize(
    const Matrix& a, const BidiagOptions& options = {});

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_BIDIAG_H_
