#include "linalg/randomized_svd.h"

#include <algorithm>
#include <utility>

#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace neuroprint::linalg {
namespace {

// Orthonormalizes the columns of Y in place via CholeskyQR: G = Y^T Y =
// L L^T, and Q = Y L^{-T} solved row-by-row (forward substitution against
// L), so the whole step is Gram + a small factorization + a row-parallel
// triangular solve — all tiled-kernel / pool friendly. Falls back to
// Householder QR when G is not numerically positive definite (Y close to
// rank-deficient, e.g. after power iterations on a fast-decaying spectrum).
Status OrthonormalizeColumns(Matrix* y, const ParallelContext& ctx) {
  const Matrix g = Gram(*y, ctx);
  auto chol = CholeskyDecompose(g);
  if (!chol.ok()) {
    auto qr = QrDecompose(*y);
    if (!qr.ok()) return qr.status();
    *y = std::move(qr->q);
    return Status::OK();
  }
  const Matrix& l = *chol;
  const std::size_t n = l.rows();
  ParallelFor(ctx, 0, y->rows(), GrainForWork(n * n / 2 + 1),
              [&](std::size_t row_lo, std::size_t row_hi) {
                for (std::size_t i = row_lo; i < row_hi; ++i) {
                  double* row = y->RowPtr(i);
                  for (std::size_t j = 0; j < n; ++j) {
                    const double* lrow = l.RowPtr(j);
                    double sum = row[j];
                    for (std::size_t t = 0; t < j; ++t) sum -= lrow[t] * row[t];
                    row[j] = sum / lrow[j];
                  }
                }
              });
  return Status::OK();
}

// First k columns of x.
Matrix FirstCols(const Matrix& x, std::size_t k) {
  return x.Block(0, 0, x.rows(), k);
}

Result<SvdDecomposition> RandomizedSvdTall(const Matrix& a,
                                           const RandomizedSvdOptions& options,
                                           std::size_t sketch_width) {
  const std::size_t n = a.cols();
  const ParallelContext& ctx = options.parallel;

  // Seeded Gaussian test matrix Omega (n x l), filled in row-major order so
  // the stream is independent of everything but the seed and the shape.
  Rng rng(options.seed);
  Matrix omega(n, sketch_width);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = omega.RowPtr(i);
    for (std::size_t j = 0; j < sketch_width; ++j) row[j] = rng.Gaussian();
  }

  // Range finder: Y = A Omega, orthonormalized.
  Matrix y = MatMul(a, omega, ctx);
  Status st = OrthonormalizeColumns(&y, ctx);
  if (!st.ok()) return st;

  // Power iterations: Y <- orth(A orth(A^T Y)). The interleaved
  // re-orthonormalization is what keeps the subspace numerically full-rank
  // when the spectrum decays quickly.
  for (int it = 0; it < options.power_iterations; ++it) {
    Matrix z = MatTMul(a, y, ctx);
    st = OrthonormalizeColumns(&z, ctx);
    if (!st.ok()) return st;
    y = MatMul(a, z, ctx);
    st = OrthonormalizeColumns(&y, ctx);
    if (!st.ok()) return st;
  }

  // Project: B = Q^T A is l x n; its exact (small) SVD lifts back through Q.
  const Matrix b = MatTMul(y, a, ctx);
  SvdOptions small_options;
  small_options.parallel = ctx;
  auto bsvd = Svd(b, small_options);
  if (!bsvd.ok()) return bsvd.status();

  const std::size_t k = std::min(options.rank, bsvd->s.size());
  SvdDecomposition out;
  out.u = MatMul(y, FirstCols(bsvd->u, k), ctx);
  out.s.assign(bsvd->s.begin(),
               bsvd->s.begin() + static_cast<std::ptrdiff_t>(k));
  out.v = FirstCols(bsvd->v, k);
  return out;
}

}  // namespace

Result<SvdDecomposition> RandomizedSvd(const Matrix& a,
                                       const RandomizedSvdOptions& options) {
  NP_TRACE_SCOPE("linalg.randomized_svd");
  metrics::Count("rsvd.calls", 1);
  if (options.rank == 0) {
    return Status::InvalidArgument("RandomizedSvd: options.rank must be > 0");
  }
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("RandomizedSvd: empty matrix");
  }
  if (!a.AllFinite()) {
    return Status::InvalidArgument("RandomizedSvd: non-finite input");
  }
  if (options.power_iterations < 0) {
    return Status::InvalidArgument(
        StrFormat("RandomizedSvd: power_iterations must be >= 0, got %d",
                  options.power_iterations));
  }

  const std::size_t min_dim = std::min(a.rows(), a.cols());
  const std::size_t sketch_width =
      std::min(options.rank + options.oversample, min_dim);

  // A sketch as wide as the small dimension cannot beat the exact
  // decomposition; run it directly (truncated), keeping the rank-k output
  // contract.
  if (sketch_width >= min_dim) {
    SvdOptions exact_options;
    exact_options.parallel = options.parallel;
    auto svd = Svd(a, exact_options);
    if (!svd.ok()) return svd.status();
    const std::size_t k = std::min(options.rank, svd->s.size());
    SvdDecomposition out;
    out.u = svd->u.Block(0, 0, svd->u.rows(), k);
    out.s.assign(svd->s.begin(),
                 svd->s.begin() + static_cast<std::ptrdiff_t>(k));
    out.v = svd->v.Block(0, 0, svd->v.rows(), k);
    return out;
  }

  if (a.rows() >= a.cols()) {
    return RandomizedSvdTall(a, options, sketch_width);
  }
  // Wide input: sketch A^T and swap the roles of U and V.
  auto t = RandomizedSvdTall(a.Transposed(), options, sketch_width);
  if (!t.ok()) return t.status();
  SvdDecomposition out;
  out.u = std::move(t->v);
  out.s = std::move(t->s);
  out.v = std::move(t->u);
  return out;
}

}  // namespace neuroprint::linalg
