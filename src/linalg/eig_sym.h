// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Used for the Gram-matrix fast path (eigenvectors of A^T A give the right
// singular vectors of A) and as an independent check of the SVD. Jacobi is
// O(n^3) per sweep but extremely robust and accurate for the small dense
// symmetric matrices that arise here (n <= a few hundred).

#ifndef NEUROPRINT_LINALG_EIG_SYM_H_
#define NEUROPRINT_LINALG_EIG_SYM_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::linalg {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix, with
/// eigenvalues sorted in descending order and orthonormal columns in V.
struct SymmetricEigenDecomposition {
  Vector eigenvalues;
  Matrix eigenvectors;  ///< Column j pairs with eigenvalues[j].
};

/// Computes the eigendecomposition of a symmetric matrix. Fails on
/// non-square, non-finite, or materially asymmetric input (relative
/// asymmetry > 1e-8), and if rotation sweeps do not converge.
Result<SymmetricEigenDecomposition> EigSym(const Matrix& a,
                                           int max_sweeps = 100);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_EIG_SYM_H_
