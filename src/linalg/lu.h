// LU factorization with partial pivoting: general linear solves, inverse,
// and determinant for small dense systems (affine transforms, registration).

#ifndef NEUROPRINT_LINALG_LU_H_
#define NEUROPRINT_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::linalg {

/// Packed LU factorization P A = L U with partial pivoting.
class LuDecomposition {
 public:
  /// Factors `a`; fails on singular input.
  static Result<LuDecomposition> Compute(const Matrix& a);

  /// Solves A x = b.
  Result<Vector> Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Result<Matrix> Solve(const Matrix& b) const;

  /// det(A), including the pivot sign.
  double Determinant() const;

 private:
  LuDecomposition(Matrix lu, std::vector<std::size_t> pivots, int pivot_sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)), pivot_sign_(pivot_sign) {}

  Matrix lu_;  ///< L (unit diagonal, strictly lower) and U packed together.
  std::vector<std::size_t> pivots_;
  int pivot_sign_;
};

/// Solves A x = b via LU.
Result<Vector> LuSolve(const Matrix& a, const Vector& b);

/// Matrix inverse via LU; fails on singular input.
Result<Matrix> Inverse(const Matrix& a);

/// Determinant via LU (0 for singular).
double Determinant(const Matrix& a);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_LU_H_
