// Free functions on linalg::Vector: dot products, norms, scaling,
// elementary statistics. These are the level-1 kernels used throughout the
// preprocessing and attack code.

#ifndef NEUROPRINT_LINALG_VECTOR_OPS_H_
#define NEUROPRINT_LINALG_VECTOR_OPS_H_

#include <cstddef>

#include "linalg/matrix.h"

namespace neuroprint::linalg {

/// <x, y>. Sizes must match.
double Dot(const Vector& x, const Vector& y);

/// Euclidean norm ||x||_2.
double Norm2(const Vector& x);

/// Squared Euclidean norm.
double Norm2Squared(const Vector& x);

/// L1 norm.
double Norm1(const Vector& x);

/// max |x_i| (0 for empty).
double NormInf(const Vector& x);

/// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void Scale(double alpha, Vector& x);

/// Normalizes x to unit 2-norm in place; returns the original norm.
/// A zero vector is left unchanged (returns 0).
double NormalizeInPlace(Vector& x);

/// Arithmetic mean (0 for empty).
double Mean(const Vector& x);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const Vector& x);

/// sqrt(Variance).
double StdDev(const Vector& x);

/// Pearson correlation of two equal-length vectors. Returns 0 when either
/// input has zero variance (the degenerate-signal convention used for
/// constant fMRI time series).
double PearsonCorrelation(const Vector& x, const Vector& y);

/// Subtracts the mean in place.
void CenterInPlace(Vector& x);

/// (x - mean) / stddev in place; a zero-variance vector becomes all zeros.
void ZScoreInPlace(Vector& x);

/// Element-wise sum / difference.
Vector Add(const Vector& x, const Vector& y);
Vector Subtract(const Vector& x, const Vector& y);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_VECTOR_OPS_H_
