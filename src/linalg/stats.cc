#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd/simd.h"
#include "util/metrics.h"

namespace neuroprint::linalg {
namespace {

// A series is degenerate for normalization when its spread is zero or
// any non-finite value poisoned the accumulation (NaN fails every
// ordered comparison, so `sd <= 0.0` alone would let NaN through).
// Degenerate series normalize to a defined all-zero output instead of
// NaN; callers see the counts as stats.zero_variance_series /
// stats.nonfinite_series semantic counters.
bool DegenerateSpread(double spread) {
  return !std::isfinite(spread) || spread <= 0.0;
}

// True when a norm is far enough from zero/overflow that the product of
// two safe norms can neither underflow to zero nor overflow to inf —
// i.e. the product is provably non-degenerate and the vectorized
// scale_clamp kernel can skip the per-element DegenerateSpread branch.
// NaN fails both comparisons. The branch taken is a pure function of the
// norms (never of the ISA or thread count), so both sides of the
// dispatch stay bit-identical.
bool SafeNorm(double norm) { return norm >= 1e-150 && norm <= 1e150; }

// Counts degenerate entries once, serially, so the semantic counters are
// identical at any thread count.
void CountDegenerate(const Vector& spreads) {
  std::uint64_t zero_variance = 0;
  std::uint64_t nonfinite = 0;
  for (double s : spreads) {
    if (!std::isfinite(s)) {
      ++nonfinite;
    } else if (s <= 0.0) {
      ++zero_variance;
    }
  }
  if (zero_variance > 0) {
    metrics::Count("stats.zero_variance_series", zero_variance);
  }
  if (nonfinite > 0) metrics::Count("stats.nonfinite_series", nonfinite);
}

}  // namespace

Vector RowMeans(const Matrix& m) {
  Vector means(m.rows(), 0.0);
  if (m.cols() == 0) return means;
  const simd::Ops& ops = simd::ActiveOps();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    means[i] =
        ops.sum(m.RowPtr(i), m.cols()) / static_cast<double>(m.cols());
  }
  return means;
}

Vector ColMeans(const Matrix& m) {
  Vector means(m.cols(), 0.0);
  if (m.rows() == 0) return means;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < m.cols(); ++j) means[j] += row[j];
  }
  for (double& v : means) v /= static_cast<double>(m.rows());
  return means;
}

Vector RowStdDevs(const Matrix& m) {
  Vector sds(m.rows(), 0.0);
  if (m.cols() < 2) return sds;
  const Vector means = RowMeans(m);
  const simd::Ops& ops = simd::ActiveOps();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double sum = ops.css(m.RowPtr(i), m.cols(), means[i]);
    sds[i] = std::sqrt(sum / static_cast<double>(m.cols() - 1));
  }
  return sds;
}

void ZScoreRowsInPlace(Matrix& m, const ParallelContext& ctx) {
  if (m.cols() == 0) return;
  const Vector means = RowMeans(m);
  const Vector sds = RowStdDevs(m);
  CountDegenerate(sds);
  const simd::Ops& ops = simd::ActiveOps();
  ParallelFor(ctx, 0, m.rows(), GrainForWork(m.cols()),
              [&](std::size_t row_lo, std::size_t row_hi) {
                for (std::size_t i = row_lo; i < row_hi; ++i) {
                  double* row = m.RowPtr(i);
                  if (DegenerateSpread(sds[i])) {
                    std::fill(row, row + m.cols(), 0.0);
                    continue;
                  }
                  ops.center_scale(row, m.cols(), means[i], 1.0 / sds[i]);
                }
              });
}

void ZScoreColsInPlace(Matrix& m) {
  if (m.rows() == 0) return;
  Vector sds(m.cols(), 0.0);
  Vector means(m.cols(), 0.0);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) mean += m(i, j);
    mean /= static_cast<double>(m.rows());
    double var = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const double d = m(i, j) - mean;
      var += d * d;
    }
    means[j] = mean;
    sds[j] =
        m.rows() > 1 ? std::sqrt(var / static_cast<double>(m.rows() - 1)) : 0.0;
  }
  CountDegenerate(sds);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const double mean = means[j];
    const double sd = sds[j];
    if (DegenerateSpread(sd)) {
      for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) = 0.0;
      continue;
    }
    const double inv = 1.0 / sd;
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) = (m(i, j) - mean) * inv;
  }
}

Vector RowNormsSquared(const Matrix& m) {
  Vector norms(m.rows(), 0.0);
  const simd::Ops& ops = simd::ActiveOps();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    norms[i] = ops.nrm2sq(m.RowPtr(i), m.cols());
  }
  return norms;
}

Matrix RowCovariance(const Matrix& m) {
  const std::size_t p = m.rows();
  const std::size_t n = m.cols();
  Matrix cov(p, p);
  if (n < 2) return cov;
  Matrix centered = m;
  const Vector means = RowMeans(m);
  for (std::size_t i = 0; i < p; ++i) {
    double* row = centered.RowPtr(i);
    for (std::size_t j = 0; j < n; ++j) row[j] -= means[i];
  }
  cov = MatMulT(centered, centered);
  cov *= 1.0 / static_cast<double>(n - 1);
  return cov;
}

Matrix RowCorrelation(const Matrix& m, const ParallelContext& ctx) {
  const std::size_t p = m.rows();
  Matrix centered = m;
  const Vector means = RowMeans(m);
  Vector norms(p, 0.0);
  const simd::Ops& ops = simd::ActiveOps();
  ParallelFor(ctx, 0, p, GrainForWork(m.cols()),
              [&](std::size_t row_lo, std::size_t row_hi) {
                for (std::size_t i = row_lo; i < row_hi; ++i) {
                  double* row = centered.RowPtr(i);
                  norms[i] =
                      std::sqrt(ops.center_nrm2sq(row, m.cols(), means[i]));
                }
              });
  CountDegenerate(norms);
  Matrix corr = MatMulT(centered, centered, ctx);
  ParallelFor(ctx, 0, p, GrainForWork(p),
              [&](std::size_t row_lo, std::size_t row_hi) {
                for (std::size_t i = row_lo; i < row_hi; ++i) {
                  for (std::size_t j = 0; j < p; ++j) {
                    const double denom = norms[i] * norms[j];
                    if (i == j) {
                      corr(i, j) = 1.0;
                    } else if (DegenerateSpread(denom)) {
                      corr(i, j) = 0.0;
                    } else {
                      corr(i, j) = std::clamp(corr(i, j) / denom, -1.0, 1.0);
                    }
                  }
                }
              });
  return corr;
}

Matrix ColumnCrossCorrelation(const Matrix& a, const Matrix& b,
                              const ParallelContext& ctx) {
  NP_CHECK_EQ(a.rows(), b.rows())
      << "ColumnCrossCorrelation: feature dimension mismatch";
  const std::size_t features = a.rows();

  // Center and norm the columns of both matrices, then one gemm.
  auto centered_with_norms = [features, &ctx](const Matrix& m, Vector& norms) {
    Matrix c = m;
    norms.assign(m.cols(), 0.0);
    ParallelFor(ctx, 0, m.cols(), GrainForWork(features),
                [&](std::size_t col_lo, std::size_t col_hi) {
                  for (std::size_t j = col_lo; j < col_hi; ++j) {
                    double mean = 0.0;
                    for (std::size_t i = 0; i < features; ++i) mean += c(i, j);
                    if (features > 0) mean /= static_cast<double>(features);
                    double sum = 0.0;
                    for (std::size_t i = 0; i < features; ++i) {
                      c(i, j) -= mean;
                      sum += c(i, j) * c(i, j);
                    }
                    norms[j] = std::sqrt(sum);
                  }
                });
    return c;
  };

  Vector norms_a, norms_b;
  const Matrix ca = centered_with_norms(a, norms_a);
  const Matrix cb = centered_with_norms(b, norms_b);
  CountDegenerate(norms_a);
  CountDegenerate(norms_b);
  Matrix corr = MatTMul(ca, cb, ctx);
  const bool b_norms_safe =
      std::all_of(norms_b.begin(), norms_b.end(), SafeNorm);
  const simd::Ops& ops = simd::ActiveOps();
  ParallelFor(ctx, 0, corr.rows(), GrainForWork(corr.cols()),
              [&](std::size_t row_lo, std::size_t row_hi) {
                for (std::size_t i = row_lo; i < row_hi; ++i) {
                  if (b_norms_safe && SafeNorm(norms_a[i])) {
                    ops.scale_clamp(corr.RowPtr(i), norms_b.data(),
                                    corr.cols(), norms_a[i]);
                    continue;
                  }
                  for (std::size_t j = 0; j < corr.cols(); ++j) {
                    const double denom = norms_a[i] * norms_b[j];
                    corr(i, j) = DegenerateSpread(denom)
                                     ? 0.0
                                     : std::clamp(corr(i, j) / denom, -1.0,
                                                  1.0);
                  }
                }
              });
  return corr;
}

}  // namespace neuroprint::linalg
