// Singular value decomposition.
//
// Svd() computes a thin SVD A = U diag(s) V^T with singular values in
// descending order. The default algorithm is Golub–Kahan–Reinsch
// (Householder bidiagonalization + implicit-shift QR on the bidiagonal),
// with an automatic thin-QR preconditioning step for tall-skinny inputs —
// the shape of the paper's 64620 x 100 group matrices. A one-sided Jacobi
// implementation is provided as an independent cross-check used in tests.

#ifndef NEUROPRINT_LINALG_SVD_H_
#define NEUROPRINT_LINALG_SVD_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::linalg {

/// Thin SVD of an m x n matrix: u is m x k, s has k entries (descending,
/// non-negative), v is n x k, where k = min(m, n).
struct SvdDecomposition {
  Matrix u;
  Vector s;
  Matrix v;

  /// True if the thin-QR preconditioning fast path produced this
  /// decomposition (telemetry: lets callers and tests verify the tall-
  /// skinny path was actually taken).
  bool qr_preconditioned = false;

  /// True if the blocked panel bidiagonalization (level-3 trailing
  /// updates) produced the bidiagonal form (telemetry, like
  /// qr_preconditioned).
  bool blocked_bidiag = false;

  /// Reconstructs U diag(s) V^T (for tests and diagnostics).
  Matrix Reconstruct() const;

  /// Numerical rank: number of singular values > tol * s[0].
  std::size_t Rank(double rel_tol = 1e-12) const;
};

struct SvdOptions {
  /// Maximum implicit-shift QR iterations per singular value.
  int max_iterations_per_value = 60;
  /// If rows >= qr_precondition_ratio * cols, factor A = QR first and run
  /// the SVD on R (exact; saves the O(m n) sweeps on the long dimension).
  double qr_precondition_ratio = 1.6;
  /// Disables the QR fast path (for testing the direct path on tall input).
  bool force_direct = false;
  /// Panel width of the blocked Householder bidiagonalization used on
  /// the direct path when min(rows, cols) >= 64 (trailing updates become
  /// tiled level-3 GEMMs on the thread pool). 0 = auto (32 columns),
  /// 1 = force the classic unblocked single-vector reduction,
  /// >= 2 = explicit panel width.
  std::size_t bidiag_panel = 0;
  /// Thread knob for the gemm-shaped steps (never changes results).
  ParallelContext parallel;
};

/// Computes the thin SVD. Fails with InvalidArgument on non-finite input
/// and NotConverged if the QR iteration stalls (pathological inputs).
Result<SvdDecomposition> Svd(const Matrix& a, const SvdOptions& options = {});

/// One-sided Jacobi SVD (Hestenes). Slower but independently derived;
/// requires rows >= cols. Used to cross-validate Svd() in tests.
Result<SvdDecomposition> JacobiSvd(const Matrix& a, int max_sweeps = 60);

/// Singular values only (descending), via Svd().
Result<Vector> SingularValues(const Matrix& a);

/// Moore–Penrose pseudo-inverse via the thin SVD; singular values below
/// rel_tol * s_max are treated as zero.
Result<Matrix> PseudoInverse(const Matrix& a, double rel_tol = 1e-12);

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_SVD_H_
