#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/gemm_kernel.h"
#include "util/string_util.h"

namespace neuroprint::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    NP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::RowCopy(std::size_t i) const {
  NP_CHECK_LT(i, rows_);
  return Vector(RowPtr(i), RowPtr(i) + cols_);
}

Vector Matrix::ColCopy(std::size_t j) const {
  NP_CHECK_LT(j, cols_);
  Vector col(rows_);
  for (std::size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void Matrix::SetRow(std::size_t i, const Vector& values) {
  NP_CHECK_LT(i, rows_);
  NP_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(i));
}

void Matrix::SetCol(std::size_t j, const Vector& values) {
  NP_CHECK_LT(j, cols_);
  NP_CHECK_EQ(values.size(), rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = src[j];
  }
  return t;
}

Matrix Matrix::Block(std::size_t row0, std::size_t col0, std::size_t row_count,
                     std::size_t col_count) const {
  NP_CHECK_LE(row0 + row_count, rows_);
  NP_CHECK_LE(col0 + col_count, cols_);
  Matrix b(row_count, col_count);
  for (std::size_t i = 0; i < row_count; ++i) {
    const double* src = RowPtr(row0 + i) + col0;
    std::copy(src, src + col_count, b.RowPtr(i));
  }
  return b;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  NP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  NP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Matrix::ToString(std::size_t max_rows, std::size_t max_cols) const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  const std::size_t show_rows = std::min(rows_, max_rows);
  const std::size_t show_cols = std::min(cols_, max_cols);
  for (std::size_t i = 0; i < show_rows; ++i) {
    os << "\n ";
    for (std::size_t j = 0; j < show_cols; ++j) {
      os << StrFormat("% .4g ", (*this)(i, j));
    }
    if (show_cols < cols_) os << "...";
  }
  if (show_rows < rows_) os << "\n ...";
  return os.str();
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::fabs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

Matrix MatMul(const Matrix& a, const Matrix& b, const ParallelContext& ctx) {
  NP_CHECK_EQ(a.cols(), b.rows())
      << "MatMul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  Matrix c(a.rows(), b.cols());
  TiledGemm(a, /*trans_a=*/false, b, /*trans_b=*/false, &c, ctx);
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b, const ParallelContext& ctx) {
  NP_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  TiledGemm(a, /*trans_a=*/true, b, /*trans_b=*/false, &c, ctx);
  return c;
}

Matrix MatMulT(const Matrix& a, const Matrix& b, const ParallelContext& ctx) {
  NP_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  TiledGemm(a, /*trans_a=*/false, b, /*trans_b=*/true, &c, ctx);
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x, const ParallelContext& ctx) {
  NP_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  const std::size_t n = a.cols();
  // Four rows share each load of x; every row keeps one accumulator over
  // ascending j, so results match the single-row loop exactly.
  ParallelFor(ctx, 0, a.rows(), GrainForWork(n),
              [&](std::size_t row_lo, std::size_t row_hi) {
                std::size_t i = row_lo;
                for (; i + 4 <= row_hi; i += 4) {
                  const double* r0 = a.RowPtr(i);
                  const double* r1 = a.RowPtr(i + 1);
                  const double* r2 = a.RowPtr(i + 2);
                  const double* r3 = a.RowPtr(i + 3);
                  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
                  for (std::size_t j = 0; j < n; ++j) {
                    const double xj = x[j];
                    s0 += r0[j] * xj;
                    s1 += r1[j] * xj;
                    s2 += r2[j] * xj;
                    s3 += r3[j] * xj;
                  }
                  y[i] = s0;
                  y[i + 1] = s1;
                  y[i + 2] = s2;
                  y[i + 3] = s3;
                }
                for (; i < row_hi; ++i) {
                  const double* row = a.RowPtr(i);
                  double sum = 0.0;
                  for (std::size_t j = 0; j < n; ++j) sum += row[j] * x[j];
                  y[i] = sum;
                }
              });
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  NP_CHECK_EQ(a.rows(), x.size());
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* row = a.RowPtr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix Gram(const Matrix& a, const ParallelContext& ctx) {
  Matrix g(a.cols(), a.cols());
  TiledGram(a, &g, ctx);
  return g;
}

}  // namespace neuroprint::linalg
