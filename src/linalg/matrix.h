// Dense row-major double-precision matrix and the BLAS-like kernels the
// rest of neuroprint builds on.
//
// Matrices here are small-to-medium dense blocks (the paper's largest is a
// 64620 x 100 group matrix); everything is double precision and row-major.
// Decompositions (QR, SVD, Cholesky, LU, symmetric eigensolver) live in
// their own headers within this module.

#ifndef NEUROPRINT_LINALG_MATRIX_H_
#define NEUROPRINT_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace neuroprint::linalg {

/// Dense column vector; free functions in vector_ops.h operate on it.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Copyable and movable. Element access is `m(i, j)`; storage is contiguous
/// and exposed via data() for kernels. Dimensions are fixed at construction
/// (no incremental growth) to keep the invariants trivial.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill` (default 0).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// n x n identity.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    NP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    NP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row i.
  double* RowPtr(std::size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(std::size_t i) const { return data_.data() + i * cols_; }

  /// Copies of a row / column.
  Vector RowCopy(std::size_t i) const;
  Vector ColCopy(std::size_t j) const;

  void SetRow(std::size_t i, const Vector& values);
  void SetCol(std::size_t j, const Vector& values);

  /// Returns the transpose (materialized).
  Matrix Transposed() const;

  /// Sub-block of `row_count` x `col_count` starting at (row0, col0).
  Matrix Block(std::size_t row0, std::size_t col0, std::size_t row_count,
               std::size_t col_count) const;

  /// Frobenius norm sqrt(sum a_ij^2).
  double FrobeniusNorm() const;

  /// max_ij |a_ij|.
  double MaxAbs() const;

  /// True if every element is finite.
  bool AllFinite() const;

  /// In-place scalar operations.
  Matrix& operator*=(double s);
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  /// Fills every element with `value`.
  void Fill(double value);

  /// Debug rendering ("[2x3]\n 1 2 3\n 4 5 6"); large matrices elided.
  std::string ToString(std::size_t max_rows = 8, std::size_t max_cols = 8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise sum / difference; dimensions must match.
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, double s);
Matrix operator*(double s, const Matrix& a);

/// True if dims match and max |a_ij - b_ij| <= tol.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

// The gemm-shaped kernels below lower onto the cache-blocked micro-kernels
// in gemm_kernel.h. Every path (serial, row-parallel, panel-parallel)
// accumulates in one canonical order — fixed kGemmPanelK-wide K panels,
// ascending k within a panel, panels folded in ascending order — so
// results are bitwise-identical to ReferenceGemm() at every thread count.

/// C = A * B. Cache-blocked packed-panel kernel (see gemm_kernel.h).
Matrix MatMul(const Matrix& a, const Matrix& b,
              const ParallelContext& ctx = {});

/// C = A^T * B (computed without materializing A^T).
Matrix MatTMul(const Matrix& a, const Matrix& b,
               const ParallelContext& ctx = {});

/// C = A * B^T (computed without materializing B^T).
Matrix MatMulT(const Matrix& a, const Matrix& b,
               const ParallelContext& ctx = {});

/// y = A * x.
Vector MatVec(const Matrix& a, const Vector& x,
              const ParallelContext& ctx = {});

/// y = A^T * x.
Vector MatTVec(const Matrix& a, const Vector& x);

/// Gram matrix A^T A (symmetric n x n; tiled kernel computes only tiles
/// touching the upper triangle and mirrors).
Matrix Gram(const Matrix& a, const ParallelContext& ctx = {});

}  // namespace neuroprint::linalg

#endif  // NEUROPRINT_LINALG_MATRIX_H_
