// AVX2 kernels. Bitwise-identical to kernels_scalar.cc by construction:
// one __m256d holds the four canonical lane accumulators, lane-local adds
// mirror the scalar lane updates, ragged tails fall back to the same
// scalar statements, and every element sees exactly one multiply and one
// add (FMA is available at this TU's -mfma but deliberately unused; the
// TU also compiles with -ffp-contract=off so the compiler cannot fuse
// behind our back — see CMakeLists.txt).
//
// This file is the only place (with kernels_neon.cc) allowed to include
// <immintrin.h> or name _mm* intrinsics (lint: simd-confinement).

#include "linalg/simd/kernels.h"
#include "linalg/simd/simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

namespace neuroprint::linalg::simd {
namespace {

void GemmMicroAvx2(const double* ap, const double* bp, std::size_t kc,
                   double* acc) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* av = ap + kk * kGemmMr;
    const __m256d bv = _mm256_loadu_pd(bp + kk * kGemmNr);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(av[0]), bv));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(av[1]), bv));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_set1_pd(av[2]), bv));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_set1_pd(av[3]), bv));
  }
  _mm256_storeu_pd(acc + 0 * kGemmNr, acc0);
  _mm256_storeu_pd(acc + 1 * kGemmNr, acc1);
  _mm256_storeu_pd(acc + 2 * kGemmNr, acc2);
  _mm256_storeu_pd(acc + 3 * kGemmNr, acc3);
}

inline double FoldLanes(const double lanes[kLanes]) {
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

double DotAvx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i] * y[i];
  return FoldLanes(lanes);
}

double SumAvx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i];
  return FoldLanes(lanes);
}

double Nrm2SqAvx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i] * x[i];
  return FoldLanes(lanes);
}

double CssAvx2(const double* x, std::size_t n, double mean) {
  const __m256d mu = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mu);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    lanes[l] += d * d;
  }
  return FoldLanes(lanes);
}

double CenterNrm2SqAvx2(double* x, std::size_t n, double mean) {
  const __m256d mu = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mu);
    _mm256_storeu_pd(x + i, d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double lanes[kLanes];
  _mm256_storeu_pd(lanes, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    x[i] = d;
    lanes[l] += d * d;
  }
  return FoldLanes(lanes);
}

void CorrMomentsAvx2(const double* x, const double* y, std::size_t n,
                     double mean_x, double mean_y, double* sxy, double* sxx,
                     double* syy) {
  const __m256d mx = _mm256_set1_pd(mean_x);
  const __m256d my = _mm256_set1_pd(mean_y);
  __m256d axy = _mm256_setzero_pd();
  __m256d axx = _mm256_setzero_pd();
  __m256d ayy = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), mx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), my);
    axy = _mm256_add_pd(axy, _mm256_mul_pd(dx, dy));
    axx = _mm256_add_pd(axx, _mm256_mul_pd(dx, dx));
    ayy = _mm256_add_pd(ayy, _mm256_mul_pd(dy, dy));
  }
  double lxy[kLanes];
  double lxx[kLanes];
  double lyy[kLanes];
  _mm256_storeu_pd(lxy, axy);
  _mm256_storeu_pd(lxx, axx);
  _mm256_storeu_pd(lyy, ayy);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    lxy[l] += dx * dy;
    lxx[l] += dx * dx;
    lyy[l] += dy * dy;
  }
  *sxy = FoldLanes(lxy);
  *sxx = FoldLanes(lxx);
  *syy = FoldLanes(lyy);
}

void AxpyAvx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void CenterScaleAvx2(double* x, std::size_t n, double mean,
                     double inv_scale) {
  const __m256d mu = _mm256_set1_pd(mean);
  const __m256d inv = _mm256_set1_pd(inv_scale);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mu);
    _mm256_storeu_pd(x + i, _mm256_mul_pd(d, inv));
  }
  for (; i < n; ++i) x[i] = (x[i] - mean) * inv_scale;
}

void ScaleClampAvx2(double* row, const double* denoms, std::size_t n,
                    double scale) {
  const __m256d sv = _mm256_set1_pd(scale);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m256d denom = _mm256_mul_pd(sv, _mm256_loadu_pd(denoms + j));
    __m256d v = _mm256_div_pd(_mm256_loadu_pd(row + j), denom);
    // Ordered, quiet compares + blends reproduce the scalar ternaries
    // exactly, including NaN pass-through (_mm256_min/max_pd would not).
    v = _mm256_blendv_pd(v, one, _mm256_cmp_pd(v, one, _CMP_GT_OQ));
    v = _mm256_blendv_pd(v, neg_one, _mm256_cmp_pd(v, neg_one, _CMP_LT_OQ));
    _mm256_storeu_pd(row + j, v);
  }
  for (; j < n; ++j) {
    double v = row[j] / (scale * denoms[j]);
    v = v > 1.0 ? 1.0 : v;
    v = v < -1.0 ? -1.0 : v;
    row[j] = v;
  }
}

constexpr Ops kAvx2Ops = {
    Isa::kAvx2,       GemmMicroAvx2,   DotAvx2,
    SumAvx2,          Nrm2SqAvx2,      CssAvx2,
    CenterNrm2SqAvx2, CorrMomentsAvx2, AxpyAvx2,
    CenterScaleAvx2,  ScaleClampAvx2,
};

}  // namespace

const Ops* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace neuroprint::linalg::simd

#else  // !x86-64

namespace neuroprint::linalg::simd {

const Ops* GetAvx2Ops() { return nullptr; }

}  // namespace neuroprint::linalg::simd

#endif
