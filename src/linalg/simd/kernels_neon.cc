// NEON (aarch64) kernels. Two float64x2_t registers emulate the four
// canonical lanes (lo = lanes 0,1; hi = lanes 2,3); lane-local adds and
// separate vmulq/vaddq (never vfmaq) keep every kernel bitwise-identical
// to kernels_scalar.cc. The TU compiles with -ffp-contract=off so the
// compiler cannot contract the scalar tails into fmadd either.
//
// This file is the only place (with kernels_avx2.cc) allowed to include
// <arm_neon.h> or name NEON intrinsics (lint: simd-confinement).

#include "linalg/simd/kernels.h"
#include "linalg/simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

namespace neuroprint::linalg::simd {
namespace {

void GemmMicroNeon(const double* ap, const double* bp, std::size_t kc,
                   double* acc) {
  float64x2_t a0lo = vdupq_n_f64(0.0), a0hi = vdupq_n_f64(0.0);
  float64x2_t a1lo = vdupq_n_f64(0.0), a1hi = vdupq_n_f64(0.0);
  float64x2_t a2lo = vdupq_n_f64(0.0), a2hi = vdupq_n_f64(0.0);
  float64x2_t a3lo = vdupq_n_f64(0.0), a3hi = vdupq_n_f64(0.0);
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* av = ap + kk * kGemmMr;
    const double* bv = bp + kk * kGemmNr;
    const float64x2_t blo = vld1q_f64(bv);
    const float64x2_t bhi = vld1q_f64(bv + 2);
    const float64x2_t r0 = vdupq_n_f64(av[0]);
    const float64x2_t r1 = vdupq_n_f64(av[1]);
    const float64x2_t r2 = vdupq_n_f64(av[2]);
    const float64x2_t r3 = vdupq_n_f64(av[3]);
    a0lo = vaddq_f64(a0lo, vmulq_f64(r0, blo));
    a0hi = vaddq_f64(a0hi, vmulq_f64(r0, bhi));
    a1lo = vaddq_f64(a1lo, vmulq_f64(r1, blo));
    a1hi = vaddq_f64(a1hi, vmulq_f64(r1, bhi));
    a2lo = vaddq_f64(a2lo, vmulq_f64(r2, blo));
    a2hi = vaddq_f64(a2hi, vmulq_f64(r2, bhi));
    a3lo = vaddq_f64(a3lo, vmulq_f64(r3, blo));
    a3hi = vaddq_f64(a3hi, vmulq_f64(r3, bhi));
  }
  vst1q_f64(acc + 0 * kGemmNr, a0lo);
  vst1q_f64(acc + 0 * kGemmNr + 2, a0hi);
  vst1q_f64(acc + 1 * kGemmNr, a1lo);
  vst1q_f64(acc + 1 * kGemmNr + 2, a1hi);
  vst1q_f64(acc + 2 * kGemmNr, a2lo);
  vst1q_f64(acc + 2 * kGemmNr + 2, a2hi);
  vst1q_f64(acc + 3 * kGemmNr, a3lo);
  vst1q_f64(acc + 3 * kGemmNr + 2, a3hi);
}

inline double FoldLanes(const double lanes[kLanes]) {
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

inline void StoreLanes(double lanes[kLanes], float64x2_t lo, float64x2_t hi) {
  vst1q_f64(lanes, lo);
  vst1q_f64(lanes + 2, hi);
}

double DotNeon(const double* x, const double* y, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0);
  float64x2_t hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    lo = vaddq_f64(lo, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    hi = vaddq_f64(hi, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  double lanes[kLanes];
  StoreLanes(lanes, lo, hi);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i] * y[i];
  return FoldLanes(lanes);
}

double SumNeon(const double* x, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0);
  float64x2_t hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    lo = vaddq_f64(lo, vld1q_f64(x + i));
    hi = vaddq_f64(hi, vld1q_f64(x + i + 2));
  }
  double lanes[kLanes];
  StoreLanes(lanes, lo, hi);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i];
  return FoldLanes(lanes);
}

double Nrm2SqNeon(const double* x, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0);
  float64x2_t hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t vlo = vld1q_f64(x + i);
    const float64x2_t vhi = vld1q_f64(x + i + 2);
    lo = vaddq_f64(lo, vmulq_f64(vlo, vlo));
    hi = vaddq_f64(hi, vmulq_f64(vhi, vhi));
  }
  double lanes[kLanes];
  StoreLanes(lanes, lo, hi);
  for (std::size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i] * x[i];
  return FoldLanes(lanes);
}

double CssNeon(const double* x, std::size_t n, double mean) {
  const float64x2_t mu = vdupq_n_f64(mean);
  float64x2_t lo = vdupq_n_f64(0.0);
  float64x2_t hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t dlo = vsubq_f64(vld1q_f64(x + i), mu);
    const float64x2_t dhi = vsubq_f64(vld1q_f64(x + i + 2), mu);
    lo = vaddq_f64(lo, vmulq_f64(dlo, dlo));
    hi = vaddq_f64(hi, vmulq_f64(dhi, dhi));
  }
  double lanes[kLanes];
  StoreLanes(lanes, lo, hi);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    lanes[l] += d * d;
  }
  return FoldLanes(lanes);
}

double CenterNrm2SqNeon(double* x, std::size_t n, double mean) {
  const float64x2_t mu = vdupq_n_f64(mean);
  float64x2_t lo = vdupq_n_f64(0.0);
  float64x2_t hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t dlo = vsubq_f64(vld1q_f64(x + i), mu);
    const float64x2_t dhi = vsubq_f64(vld1q_f64(x + i + 2), mu);
    vst1q_f64(x + i, dlo);
    vst1q_f64(x + i + 2, dhi);
    lo = vaddq_f64(lo, vmulq_f64(dlo, dlo));
    hi = vaddq_f64(hi, vmulq_f64(dhi, dhi));
  }
  double lanes[kLanes];
  StoreLanes(lanes, lo, hi);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    x[i] = d;
    lanes[l] += d * d;
  }
  return FoldLanes(lanes);
}

void CorrMomentsNeon(const double* x, const double* y, std::size_t n,
                     double mean_x, double mean_y, double* sxy, double* sxx,
                     double* syy) {
  const float64x2_t mx = vdupq_n_f64(mean_x);
  const float64x2_t my = vdupq_n_f64(mean_y);
  float64x2_t xy_lo = vdupq_n_f64(0.0), xy_hi = vdupq_n_f64(0.0);
  float64x2_t xx_lo = vdupq_n_f64(0.0), xx_hi = vdupq_n_f64(0.0);
  float64x2_t yy_lo = vdupq_n_f64(0.0), yy_hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t dx_lo = vsubq_f64(vld1q_f64(x + i), mx);
    const float64x2_t dx_hi = vsubq_f64(vld1q_f64(x + i + 2), mx);
    const float64x2_t dy_lo = vsubq_f64(vld1q_f64(y + i), my);
    const float64x2_t dy_hi = vsubq_f64(vld1q_f64(y + i + 2), my);
    xy_lo = vaddq_f64(xy_lo, vmulq_f64(dx_lo, dy_lo));
    xy_hi = vaddq_f64(xy_hi, vmulq_f64(dx_hi, dy_hi));
    xx_lo = vaddq_f64(xx_lo, vmulq_f64(dx_lo, dx_lo));
    xx_hi = vaddq_f64(xx_hi, vmulq_f64(dx_hi, dx_hi));
    yy_lo = vaddq_f64(yy_lo, vmulq_f64(dy_lo, dy_lo));
    yy_hi = vaddq_f64(yy_hi, vmulq_f64(dy_hi, dy_hi));
  }
  double lxy[kLanes];
  double lxx[kLanes];
  double lyy[kLanes];
  StoreLanes(lxy, xy_lo, xy_hi);
  StoreLanes(lxx, xx_lo, xx_hi);
  StoreLanes(lyy, yy_lo, yy_hi);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    lxy[l] += dx * dy;
    lxx[l] += dx * dx;
    lyy[l] += dy * dy;
  }
  *sxy = FoldLanes(lxy);
  *sxx = FoldLanes(lxx);
  *syy = FoldLanes(lyy);
}

void AxpyNeon(double a, const double* x, double* y, std::size_t n) {
  const float64x2_t av = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t plo = vmulq_f64(av, vld1q_f64(x + i));
    const float64x2_t phi = vmulq_f64(av, vld1q_f64(x + i + 2));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), plo));
    vst1q_f64(y + i + 2, vaddq_f64(vld1q_f64(y + i + 2), phi));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void CenterScaleNeon(double* x, std::size_t n, double mean,
                     double inv_scale) {
  const float64x2_t mu = vdupq_n_f64(mean);
  const float64x2_t inv = vdupq_n_f64(inv_scale);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(x + i, vmulq_f64(vsubq_f64(vld1q_f64(x + i), mu), inv));
    vst1q_f64(x + i + 2,
              vmulq_f64(vsubq_f64(vld1q_f64(x + i + 2), mu), inv));
  }
  for (; i < n; ++i) x[i] = (x[i] - mean) * inv_scale;
}

inline float64x2_t ClampNeon(float64x2_t v, float64x2_t one,
                             float64x2_t neg_one) {
  // bsl(select_mask, a, b) with ordered compares reproduces the scalar
  // ternaries exactly, including NaN pass-through.
  v = vbslq_f64(vcgtq_f64(v, one), one, v);
  v = vbslq_f64(vcltq_f64(v, neg_one), neg_one, v);
  return v;
}

void ScaleClampNeon(double* row, const double* denoms, std::size_t n,
                    double scale) {
  const float64x2_t sv = vdupq_n_f64(scale);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t neg_one = vdupq_n_f64(-1.0);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const float64x2_t dlo = vmulq_f64(sv, vld1q_f64(denoms + j));
    const float64x2_t dhi = vmulq_f64(sv, vld1q_f64(denoms + j + 2));
    const float64x2_t vlo =
        ClampNeon(vdivq_f64(vld1q_f64(row + j), dlo), one, neg_one);
    const float64x2_t vhi =
        ClampNeon(vdivq_f64(vld1q_f64(row + j + 2), dhi), one, neg_one);
    vst1q_f64(row + j, vlo);
    vst1q_f64(row + j + 2, vhi);
  }
  for (; j < n; ++j) {
    double v = row[j] / (scale * denoms[j]);
    v = v > 1.0 ? 1.0 : v;
    v = v < -1.0 ? -1.0 : v;
    row[j] = v;
  }
}

constexpr Ops kNeonOps = {
    Isa::kNeon,       GemmMicroNeon,   DotNeon,
    SumNeon,          Nrm2SqNeon,      CssNeon,
    CenterNrm2SqNeon, CorrMomentsNeon, AxpyNeon,
    CenterScaleNeon,  ScaleClampNeon,
};

}  // namespace

const Ops* GetNeonOps() { return &kNeonOps; }

}  // namespace neuroprint::linalg::simd

#else  // !aarch64

namespace neuroprint::linalg::simd {

const Ops* GetNeonOps() { return nullptr; }

}  // namespace neuroprint::linalg::simd

#endif
