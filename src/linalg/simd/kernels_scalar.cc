// Portable reference kernels. These definitions ARE the numeric contract:
// every vector ISA must reproduce them bit for bit.
//
// Reductions use the canonical lane-split order: kLanes (4) interleaved
// accumulators, lane l taking elements with index i % 4 == l in ascending
// i, folded left-to-right at the end:
//
//   result = ((acc0 + acc1) + acc2) + acc3
//
// A 4-wide vector register holding {acc0..acc3} performs exactly these
// lane-local additions, so AVX2 (one register) and NEON (two registers)
// match this code bitwise for any n, including ragged tails. Elementwise
// kernels and the GEMM micro-kernel use one multiply and one add per
// element — never a fused multiply-add — which vector ISAs reproduce
// exactly (their TUs compile with -ffp-contract=off so the compiler
// cannot contract either).

#include <cstddef>

#include "linalg/simd/kernels.h"
#include "linalg/simd/simd.h"

namespace neuroprint::linalg::simd {
namespace {

void GemmMicroScalar(const double* ap, const double* bp, std::size_t kc,
                     double* acc) {
  for (std::size_t i = 0; i < kGemmMr * kGemmNr; ++i) acc[i] = 0.0;
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* av = ap + kk * kGemmMr;
    const double* bv = bp + kk * kGemmNr;
    for (std::size_t r = 0; r < kGemmMr; ++r) {
      for (std::size_t c = 0; c < kGemmNr; ++c) {
        acc[r * kGemmNr + c] += av[r] * bv[c];
      }
    }
  }
}

// Folds the four lane accumulators in the canonical left-to-right order.
inline double FoldLanes(const double acc[kLanes]) {
  return ((acc[0] + acc[1]) + acc[2]) + acc[3];
}

double DotScalar(const double* x, const double* y, std::size_t n) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc[0] += x[i] * y[i];
    acc[1] += x[i + 1] * y[i + 1];
    acc[2] += x[i + 2] * y[i + 2];
    acc[3] += x[i + 3] * y[i + 3];
  }
  for (std::size_t l = 0; i < n; ++i, ++l) acc[l] += x[i] * y[i];
  return FoldLanes(acc);
}

double SumScalar(const double* x, std::size_t n) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc[0] += x[i];
    acc[1] += x[i + 1];
    acc[2] += x[i + 2];
    acc[3] += x[i + 3];
  }
  for (std::size_t l = 0; i < n; ++i, ++l) acc[l] += x[i];
  return FoldLanes(acc);
}

double Nrm2SqScalar(const double* x, std::size_t n) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc[0] += x[i] * x[i];
    acc[1] += x[i + 1] * x[i + 1];
    acc[2] += x[i + 2] * x[i + 2];
    acc[3] += x[i + 3] * x[i + 3];
  }
  for (std::size_t l = 0; i < n; ++i, ++l) acc[l] += x[i] * x[i];
  return FoldLanes(acc);
}

double CssScalar(const double* x, std::size_t n, double mean) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const double d0 = x[i] - mean;
    const double d1 = x[i + 1] - mean;
    const double d2 = x[i + 2] - mean;
    const double d3 = x[i + 3] - mean;
    acc[0] += d0 * d0;
    acc[1] += d1 * d1;
    acc[2] += d2 * d2;
    acc[3] += d3 * d3;
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    acc[l] += d * d;
  }
  return FoldLanes(acc);
}

double CenterNrm2SqScalar(double* x, std::size_t n, double mean) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const double d0 = x[i] - mean;
    const double d1 = x[i + 1] - mean;
    const double d2 = x[i + 2] - mean;
    const double d3 = x[i + 3] - mean;
    x[i] = d0;
    x[i + 1] = d1;
    x[i + 2] = d2;
    x[i + 3] = d3;
    acc[0] += d0 * d0;
    acc[1] += d1 * d1;
    acc[2] += d2 * d2;
    acc[3] += d3 * d3;
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = x[i] - mean;
    x[i] = d;
    acc[l] += d * d;
  }
  return FoldLanes(acc);
}

void CorrMomentsScalar(const double* x, const double* y, std::size_t n,
                       double mean_x, double mean_y, double* sxy, double* sxx,
                       double* syy) {
  double axy[kLanes] = {0.0, 0.0, 0.0, 0.0};
  double axx[kLanes] = {0.0, 0.0, 0.0, 0.0};
  double ayy[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double dx = x[i + l] - mean_x;
      const double dy = y[i + l] - mean_y;
      axy[l] += dx * dy;
      axx[l] += dx * dx;
      ayy[l] += dy * dy;
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    axy[l] += dx * dy;
    axx[l] += dx * dx;
    ayy[l] += dy * dy;
  }
  *sxy = FoldLanes(axy);
  *sxx = FoldLanes(axx);
  *syy = FoldLanes(ayy);
}

void AxpyScalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void CenterScaleScalar(double* x, std::size_t n, double mean,
                       double inv_scale) {
  for (std::size_t i = 0; i < n; ++i) x[i] = (x[i] - mean) * inv_scale;
}

void ScaleClampScalar(double* row, const double* denoms, std::size_t n,
                      double scale) {
  for (std::size_t j = 0; j < n; ++j) {
    double v = row[j] / (scale * denoms[j]);
    v = v > 1.0 ? 1.0 : v;
    v = v < -1.0 ? -1.0 : v;
    row[j] = v;
  }
}

constexpr Ops kScalarOps = {
    Isa::kScalar,     GemmMicroScalar,   DotScalar,
    SumScalar,        Nrm2SqScalar,      CssScalar,
    CenterNrm2SqScalar, CorrMomentsScalar, AxpyScalar,
    CenterScaleScalar, ScaleClampScalar,
};

}  // namespace

const Ops* GetScalarOps() { return &kScalarOps; }

}  // namespace neuroprint::linalg::simd
