// Dispatch resolution for the SIMD kernel tables.
//
// The table is picked once, on first use, from NEUROPRINT_ISA and the
// CPU's capabilities; like NEUROPRINT_THREADS, the variable is latched so
// mutating it mid-process cannot retune running kernels (and the getenv
// stays race-free under TSan). ScopedIsa layers a test/bench override on
// top via one atomic pointer.

#include "linalg/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/simd/kernels.h"
#include "util/logging.h"

namespace neuroprint::linalg::simd {
namespace {

// Non-null only while a ScopedIsa is alive (tests/benches; serial).
std::atomic<const Ops*> g_override{nullptr};

const Ops* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return GetAvx2Ops();
    case Isa::kNeon:
      return GetNeonOps();
    case Isa::kScalar:
      break;
  }
  return GetScalarOps();
}

const char* EnvIsaValue() {
  static const char* const value = std::getenv("NEUROPRINT_ISA");
  return value == nullptr ? "" : value;
}

const Ops* Resolve() {
  const char* requested = EnvIsaValue();
  if (*requested == '\0' || std::strcmp(requested, "native") == 0) {
    return TableFor(BestSupportedIsa());
  }
  if (std::strcmp(requested, "scalar") == 0) return GetScalarOps();
  if (std::strcmp(requested, "avx2") == 0 ||
      std::strcmp(requested, "neon") == 0) {
    const Isa isa =
        requested[0] == 'a' ? Isa::kAvx2 : Isa::kNeon;
    if (IsaSupported(isa)) return TableFor(isa);
    // Unsupported explicit request degrades to the portable reference
    // kernels (not silently to a different vector ISA) so a reproduction
    // run still computes the canonical bits.
    NP_LOG(Warning) << "NEUROPRINT_ISA=" << requested
                    << " is not supported on this CPU; using scalar kernels";
    return GetScalarOps();
  }
  NP_LOG(Warning) << "unknown NEUROPRINT_ISA value '" << requested
                  << "' (want scalar|avx2|neon|native); using native";
  return TableFor(BestSupportedIsa());
}

const Ops& ResolvedOps() {
  static const Ops* const resolved = Resolve();
  return *resolved;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

bool IsaSupported(Isa isa) {
  if (TableFor(isa) == nullptr || TableFor(isa)->isa != isa) return false;
  switch (isa) {
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      // The micro-kernels avoid FMA arithmetic but the TU is compiled
      // with -mfma, so the compiler may emit FMA instructions for
      // address math or spills; require both feature bits.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kNeon:
      // NEON is baseline on aarch64; the table existing is the check.
      return true;
    case Isa::kScalar:
      break;
  }
  return true;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

const Ops& ActiveOps() {
  const Ops* override_table = g_override.load(std::memory_order_relaxed);
  return override_table != nullptr ? *override_table : ResolvedOps();
}

Isa ActiveIsa() { return ActiveOps().isa; }

const char* IsaOverrideEnv() { return EnvIsaValue(); }

ScopedIsa::ScopedIsa(Isa isa)
    : previous_(g_override.load(std::memory_order_relaxed)) {
  const Ops* table = IsaSupported(isa) ? TableFor(isa) : GetScalarOps();
  g_override.store(table, std::memory_order_relaxed);
}

ScopedIsa::~ScopedIsa() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace neuroprint::linalg::simd
