// Runtime-dispatched SIMD micro-kernels for the dense hot loops.
//
// One dispatch table (`Ops`) holds function pointers for the level-1
// reductions, elementwise transforms, and the 4x4 GEMM micro-kernel that
// `gemm_kernel.cc` tiles over. The table is resolved once, on first use,
// from CPU capabilities (`__builtin_cpu_supports` on x86-64, baseline NEON
// on aarch64) and the `NEUROPRINT_ISA` environment variable:
//
//   NEUROPRINT_ISA=scalar   force the portable reference kernels
//   NEUROPRINT_ISA=avx2     require AVX2 (falls back to scalar with a
//                           warning when the CPU lacks it)
//   NEUROPRINT_ISA=neon     require NEON (aarch64 only; same fallback)
//   NEUROPRINT_ISA=native   pick the best supported ISA (the default)
//
// Determinism contract (see ANALYSIS.md "SIMD kernels"): every entry in
// every table computes bit-identical results for the same inputs,
// regardless of ISA. Elementwise kernels and the GEMM micro-kernel keep
// the exact per-element operation sequence of the scalar code, so
// vectorizing across independent output lanes cannot change bits (FMA
// contraction is never used; all SIMD translation units compile with
// -ffp-contract=off). Reductions use a fixed "lane-split" order — kLanes
// interleaved partial sums folded left-to-right — that the scalar kernels
// implement with the same arithmetic, making scalar the bitwise oracle
// for the vector paths at any input length.
//
// Only files under src/linalg/simd/ may include <immintrin.h> or
// <arm_neon.h> or name ISA-specific intrinsics (lint: simd-confinement).

#ifndef NEUROPRINT_LINALG_SIMD_SIMD_H_
#define NEUROPRINT_LINALG_SIMD_SIMD_H_

#include <cstddef>

namespace neuroprint::linalg::simd {

// Lane count of the canonical lane-split reduction order. Fixed at 4
// (one AVX2 register of doubles; two NEON registers) on every platform so
// results are identical across ISAs, including scalar.
inline constexpr std::size_t kLanes = 4;

// Register-tile shape of the GEMM micro-kernel. `gemm_kernel.cc` packs
// panels in groups of this size; the micro-kernel contracts one packed
// A-panel row-group against one packed B-panel column-group.
inline constexpr std::size_t kGemmMr = 4;
inline constexpr std::size_t kGemmNr = 4;

enum class Isa { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Human-readable ISA name ("scalar", "avx2", "neon").
const char* IsaName(Isa isa);

/// True when the running CPU can execute kernels for `isa`.
bool IsaSupported(Isa isa);

/// The fastest ISA supported by the running CPU.
Isa BestSupportedIsa();

// Dispatch table. All pointers are always non-null.
struct Ops {
  Isa isa;

  // acc (row-major kGemmMr x kGemmNr) := sum over kk < kc of
  // ap[kk*kGemmMr + r] * bp[kk*kGemmNr + c], accumulated in ascending kk
  // with one multiply and one add per element (no FMA).
  void (*gemm_4x4)(const double* ap, const double* bp, std::size_t kc,
                   double* acc);

  // Lane-split reductions (canonical order; see file comment).
  double (*dot)(const double* x, const double* y, std::size_t n);
  double (*sum)(const double* x, std::size_t n);
  double (*nrm2sq)(const double* x, std::size_t n);
  // Centered sum of squares: sum of (x[i]-mean)^2; does not modify x.
  double (*css)(const double* x, std::size_t n, double mean);
  // In-place centering that also returns the centered sum of squares:
  // x[i] -= mean, then accumulates x[i]*x[i] post-subtraction.
  double (*center_nrm2sq)(double* x, std::size_t n, double mean);
  // Pearson moments in one pass: dx=x[i]-mean_x, dy=y[i]-mean_y,
  // *sxy=sum dx*dy, *sxx=sum dx*dx, *syy=sum dy*dy (each lane-split).
  void (*corr_moments)(const double* x, const double* y, std::size_t n,
                       double mean_x, double mean_y, double* sxy, double* sxx,
                       double* syy);

  // Elementwise transforms (exact scalar op sequence per element).
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  // x[i] = (x[i] - mean) * inv_scale.
  void (*center_scale)(double* x, std::size_t n, double mean,
                       double inv_scale);
  // row[j] = clamp(row[j] / (scale * denoms[j]), -1, 1) with the exact
  // ternary semantics `v > 1 ? 1 : v; v < -1 ? -1 : v` (NaN passes
  // through unchanged on every ISA). Callers must ensure the products
  // scale*denoms[j] are positive and finite (see ColumnCrossCorrelation).
  void (*scale_clamp)(double* row, const double* denoms, std::size_t n,
                      double scale);
};

/// The active dispatch table. Resolved once on first call (reading
/// NEUROPRINT_ISA and probing the CPU); afterwards a single relaxed
/// atomic load, safe to call from pool workers.
const Ops& ActiveOps();

/// ISA of the active table (== ActiveOps().isa).
Isa ActiveIsa();

/// Raw NEUROPRINT_ISA value latched at first dispatch ("" when unset).
/// Recorded in bench JSON so perf records are attributable to an ISA.
const char* IsaOverrideEnv();

// Swaps the active table for the lifetime of the object — for tests and
// benches that compare ISAs within one process (e.g. scalar-vs-AVX2
// bitwise parity). Falls back to scalar when `isa` is unsupported. Not
// safe to construct while parallel kernels are in flight on other
// threads; test and bench harnesses are serial at override points.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa);
  ~ScopedIsa();
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  const Ops* previous_;
};

}  // namespace neuroprint::linalg::simd

#endif  // NEUROPRINT_LINALG_SIMD_SIMD_H_
