// Internal: per-ISA kernel table accessors for the dispatch layer.
// GetAvx2Ops()/GetNeonOps() return nullptr on hosts whose toolchain did
// not build that ISA's translation unit (the files themselves compile
// everywhere; the bodies are preprocessor-gated on the target arch).

#ifndef NEUROPRINT_LINALG_SIMD_KERNELS_H_
#define NEUROPRINT_LINALG_SIMD_KERNELS_H_

#include "linalg/simd/simd.h"

namespace neuroprint::linalg::simd {

const Ops* GetScalarOps();  // never nullptr
const Ops* GetAvx2Ops();    // nullptr unless built for x86-64
const Ops* GetNeonOps();    // nullptr unless built for aarch64

}  // namespace neuroprint::linalg::simd

#endif  // NEUROPRINT_LINALG_SIMD_KERNELS_H_
