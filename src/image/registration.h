// Rigid-body registration: estimates the 6-DoF transform aligning a moving
// volume to a reference by minimizing mean squared intensity error with a
// derivative-free coordinate-descent search (Powell-style, multi-resolution
// step schedule). This is the estimation half of head-motion correction.

#ifndef NEUROPRINT_IMAGE_REGISTRATION_H_
#define NEUROPRINT_IMAGE_REGISTRATION_H_

#include <vector>

#include "image/affine.h"
#include "image/volume.h"
#include "util/status.h"

namespace neuroprint::image {

struct RegistrationOptions {
  /// Initial search steps: voxels for translations, radians for rotations.
  double initial_translation_step = 1.0;
  double initial_rotation_step = 0.02;
  /// The search halves the steps this many times (resolution levels).
  int refinement_levels = 5;
  /// Coordinate-descent passes per level.
  int passes_per_level = 4;
  /// Evaluate the cost on every k-th voxel per axis (speed knob).
  std::size_t sample_stride = 1;
  /// Graceful degradation for MotionCorrect: when registering a frame
  /// fails, keep the frame unregistered (identity transform) and record
  /// it in MotionCorrectionResult::degraded_frames instead of failing
  /// the whole run. Off by default — batch callers opt in via
  /// FailurePolicy (see util/batch.h).
  bool identity_fallback_on_failure = false;
};

struct RegistrationResult {
  RigidTransform transform;  ///< Maps reference space onto the moving image.
  double final_cost = 0.0;   ///< Mean squared error at the optimum.
};

/// Mean squared error between `reference` and `moving` resampled under `t`.
double RegistrationCost(const Volume3D& reference, const Volume3D& moving,
                        const RigidTransform& t, std::size_t sample_stride = 1);

/// Estimates the rigid transform such that resampling `moving` by it best
/// matches `reference`. Dimensions must agree.
Result<RegistrationResult> RegisterRigid(
    const Volume3D& reference, const Volume3D& moving,
    const RegistrationOptions& options = {});

/// Motion parameters and the corrected run: every volume is registered to
/// the first and resampled.
struct MotionCorrectionResult {
  Volume4D corrected;
  std::vector<RigidTransform> motion;  ///< Per-frame estimates; motion[0] = I.
  /// Frames left unregistered by identity_fallback_on_failure, ascending.
  std::vector<std::size_t> degraded_frames;
};

Result<MotionCorrectionResult> MotionCorrect(
    const Volume4D& run, const RegistrationOptions& options = {});

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_REGISTRATION_H_
