// Brain masking (the skull-stripping analogue): classifies voxels as
// brain / non-brain from the mean image intensity, with optional erosion
// to drop partial-volume edge voxels.

#ifndef NEUROPRINT_IMAGE_MASK_H_
#define NEUROPRINT_IMAGE_MASK_H_

#include <cstdint>
#include <vector>

#include "image/volume.h"
#include "util/status.h"

namespace neuroprint::image {

/// Binary voxel mask over a 3-D grid (1 = brain).
class Mask {
 public:
  Mask() = default;
  Mask(std::size_t nx, std::size_t ny, std::size_t nz, std::uint8_t fill = 0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  bool empty() const { return data_.empty(); }

  bool at(std::size_t x, std::size_t y, std::size_t z) const {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    return data_[x + nx_ * (y + ny_ * z)] != 0;
  }
  void set(std::size_t x, std::size_t y, std::size_t z, bool value) {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    data_[x + nx_ * (y + ny_ * z)] = value ? 1 : 0;
  }

  /// Number of brain voxels.
  std::size_t CountSet() const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Thresholds the mean volume of a run at `fraction` of its robust maximum
/// (98th percentile): voxels above are brain.
Result<Mask> ComputeBrainMask(const Volume4D& run, double fraction = 0.25);

/// Same on one volume.
Result<Mask> ComputeBrainMask3D(const Volume3D& volume, double fraction = 0.25);

/// Morphological erosion by one 6-connected step (removes edge voxels).
Mask Erode(const Mask& mask);

/// Zeros every non-brain voxel across all time points.
void ApplyMask(Volume4D& run, const Mask& mask);

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_MASK_H_
