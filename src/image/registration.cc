#include "image/registration.h"

#include <array>
#include <cmath>

#include "image/interpolate.h"
#include "image/resample.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace neuroprint::image {

double RegistrationCost(const Volume3D& reference, const Volume3D& moving,
                        const RigidTransform& t, std::size_t sample_stride) {
  NP_CHECK(reference.nx() == moving.nx() && reference.ny() == moving.ny() &&
           reference.nz() == moving.nz())
      << "RegistrationCost: dimension mismatch";
  const std::size_t stride = std::max<std::size_t>(1, sample_stride);
  const double cx = 0.5 * (static_cast<double>(moving.nx()) - 1.0);
  const double cy = 0.5 * (static_cast<double>(moving.ny()) - 1.0);
  const double cz = 0.5 * (static_cast<double>(moving.nz()) - 1.0);
  // The cost evaluates moving at T^{-1}(p); build the inverse once.
  const linalg::Matrix forward = RigidToAffine(t, cx, cy, cz);
  auto inverse = InvertAffine(forward);
  if (!inverse.ok()) return std::numeric_limits<double>::infinity();

  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t z = 0; z < reference.nz(); z += stride) {
    for (std::size_t y = 0; y < reference.ny(); y += stride) {
      for (std::size_t x = 0; x < reference.nx(); x += stride) {
        double sx, sy, sz;
        ApplyAffine(*inverse, static_cast<double>(x), static_cast<double>(y),
                    static_cast<double>(z), sx, sy, sz);
        const double diff = SampleTrilinear(moving, sx, sy, sz) -
                            static_cast<double>(reference.at(x, y, z));
        sum += diff * diff;
        ++count;
      }
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

Result<RegistrationResult> RegisterRigid(const Volume3D& reference,
                                         const Volume3D& moving,
                                         const RegistrationOptions& options) {
  if (reference.empty() || moving.empty()) {
    return Status::InvalidArgument("RegisterRigid: empty volume");
  }
  if (reference.nx() != moving.nx() || reference.ny() != moving.ny() ||
      reference.nz() != moving.nz()) {
    return Status::InvalidArgument("RegisterRigid: dimension mismatch");
  }
  if (!reference.AllFinite() || !moving.AllFinite()) {
    return Status::InvalidArgument("RegisterRigid: non-finite voxels");
  }

  std::array<double, 6> params = {0, 0, 0, 0, 0, 0};
  std::array<double, 6> steps = {
      options.initial_translation_step, options.initial_translation_step,
      options.initial_translation_step, options.initial_rotation_step,
      options.initial_rotation_step,    options.initial_rotation_step};

  auto cost_at = [&](const std::array<double, 6>& p) {
    return RegistrationCost(reference, moving, RigidTransform::FromArray(p),
                            options.sample_stride);
  };
  double best_cost = cost_at(params);

  // Steepest coordinate descent: per pass evaluate a +/- step on every
  // parameter and apply only the single best improving move. First-
  // improvement greedy walks can trade rotation against translation and
  // run far from the optimum; taking the globally best move per pass
  // cannot.
  for (int level = 0; level < options.refinement_levels; ++level) {
    const int max_moves = options.passes_per_level * 12;
    for (int move = 0; move < max_moves; ++move) {
      double best_trial_cost = best_cost;
      std::array<double, 6> best_trial = params;
      for (std::size_t dim = 0; dim < 6; ++dim) {
        for (const double direction : {+1.0, -1.0}) {
          std::array<double, 6> trial = params;
          trial[dim] += direction * steps[dim];
          const double c = cost_at(trial);
          if (c < best_trial_cost - 1e-15) {
            best_trial_cost = c;
            best_trial = trial;
          }
        }
      }
      if (best_trial_cost >= best_cost - 1e-15) break;
      best_cost = best_trial_cost;
      params = best_trial;
    }
    for (double& s : steps) s *= 0.5;
  }

  RegistrationResult result;
  result.transform = RigidTransform::FromArray(params);
  result.final_cost = best_cost;
  return result;
}

Result<MotionCorrectionResult> MotionCorrect(
    const Volume4D& run, const RegistrationOptions& options) {
  if (run.empty()) return Status::InvalidArgument("MotionCorrect: empty run");
  MotionCorrectionResult out;
  out.corrected = run;
  out.motion.resize(run.nt());

  const Volume3D reference = run.ExtractVolume(0);
  for (std::size_t t = 1; t < run.nt(); ++t) {
    const Volume3D frame = run.ExtractVolume(t);
    // A fault injected at this point behaves exactly like the frame's
    // registration failing, so it exercises the fallback path too.
    Status injected = Status::OK();
    if (fault::Enabled()) {
      injected = fault::InjectedError("pipeline.motion_correct", t);
    }
    Result<RegistrationResult> reg =
        injected.ok() ? RegisterRigid(reference, frame, options)
                      : Result<RegistrationResult>(injected);
    if (!reg.ok()) {
      if (!options.identity_fallback_on_failure) return reg.status();
      // Degrade instead of failing: the frame stays unregistered under
      // the identity transform (out.corrected already holds it).
      out.motion[t] = RigidTransform{};
      out.degraded_frames.push_back(t);
      metrics::Count("pipeline.frames_degraded", 1);
      continue;
    }
    out.motion[t] = reg->transform;
    if (!reg->transform.IsApproxIdentity(1e-9)) {
      auto resampled = ResampleRigid(frame, reg->transform);
      if (!resampled.ok()) return resampled.status();
      out.corrected.SetVolume(t, *resampled);
    }
  }
  if (!out.degraded_frames.empty()) {
    metrics::Count("pipeline.scans_degraded", 1);
  }
  return out;
}

}  // namespace neuroprint::image
