#include "image/affine.h"

#include <cmath>

#include "linalg/lu.h"

namespace neuroprint::image {

bool RigidTransform::IsApproxIdentity(double tol) const {
  for (double p : AsArray()) {
    if (std::fabs(p) > tol) return false;
  }
  return true;
}

linalg::Matrix RigidToAffine(const RigidTransform& t, double cx, double cy,
                             double cz) {
  const double cx_r = std::cos(t.rotate_x), sx = std::sin(t.rotate_x);
  const double cy_r = std::cos(t.rotate_y), sy = std::sin(t.rotate_y);
  const double cz_r = std::cos(t.rotate_z), sz = std::sin(t.rotate_z);

  // R = Rz * Ry * Rx.
  linalg::Matrix r = linalg::Matrix::Identity(4);
  r(0, 0) = cz_r * cy_r;
  r(0, 1) = cz_r * sy * sx - sz * cx_r;
  r(0, 2) = cz_r * sy * cx_r + sz * sx;
  r(1, 0) = sz * cy_r;
  r(1, 1) = sz * sy * sx + cz_r * cx_r;
  r(1, 2) = sz * sy * cx_r - cz_r * sx;
  r(2, 0) = -sy;
  r(2, 1) = cy_r * sx;
  r(2, 2) = cy_r * cx_r;

  // Full transform: translate centre to origin, rotate, translate back,
  // then apply the motion translation.
  linalg::Matrix affine = r;
  const double ox = cx - (r(0, 0) * cx + r(0, 1) * cy + r(0, 2) * cz);
  const double oy = cy - (r(1, 0) * cx + r(1, 1) * cy + r(1, 2) * cz);
  const double oz = cz - (r(2, 0) * cx + r(2, 1) * cy + r(2, 2) * cz);
  affine(0, 3) = ox + t.translate_x;
  affine(1, 3) = oy + t.translate_y;
  affine(2, 3) = oz + t.translate_z;
  return affine;
}

void ApplyAffine(const linalg::Matrix& affine, double x, double y, double z,
                 double& out_x, double& out_y, double& out_z) {
  NP_DCHECK(affine.rows() == 4 && affine.cols() == 4);
  out_x = affine(0, 0) * x + affine(0, 1) * y + affine(0, 2) * z + affine(0, 3);
  out_y = affine(1, 0) * x + affine(1, 1) * y + affine(1, 2) * z + affine(1, 3);
  out_z = affine(2, 0) * x + affine(2, 1) * y + affine(2, 2) * z + affine(2, 3);
}

Result<linalg::Matrix> InvertAffine(const linalg::Matrix& affine) {
  if (affine.rows() != 4 || affine.cols() != 4) {
    return Status::InvalidArgument("InvertAffine: expected a 4x4 matrix");
  }
  return linalg::Inverse(affine);
}

}  // namespace neuroprint::image
