#include "image/smooth.h"

#include <cmath>
#include <vector>

namespace neuroprint::image {
namespace {

// Discrete Gaussian kernel with radius 3 sigma, normalized to sum 1.
std::vector<double> GaussianKernel(double sigma_voxels) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_voxels)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-0.5 * (i / sigma_voxels) * (i / sigma_voxels));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    sum += w;
  }
  for (double& w : kernel) w /= sum;
  return kernel;
}

// 1-D convolution along one axis with edge clamping. `stride` is the
// element stride along the axis, `extent` the axis length; `line_start`
// indexes the first element of the line.
void ConvolveLine(const float* in, float* out, std::size_t line_start,
                  std::size_t stride, std::size_t extent,
                  const std::vector<double>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  for (std::size_t i = 0; i < extent; ++i) {
    double acc = 0.0;
    for (int k = -radius; k <= radius; ++k) {
      std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + k;
      if (j < 0) j = 0;
      if (j >= static_cast<std::ptrdiff_t>(extent)) {
        j = static_cast<std::ptrdiff_t>(extent) - 1;
      }
      acc += kernel[static_cast<std::size_t>(k + radius)] *
             static_cast<double>(
                 in[line_start + static_cast<std::size_t>(j) * stride]);
    }
    out[line_start + i * stride] = static_cast<float>(acc);
  }
}

}  // namespace

double FwhmToSigma(double fwhm) { return fwhm / (2.0 * std::sqrt(2.0 * std::log(2.0))); }

Result<Volume3D> GaussianSmooth(const Volume3D& v, double fwhm_mm) {
  if (v.empty()) return Status::InvalidArgument("GaussianSmooth: empty volume");
  if (fwhm_mm < 0.0) {
    return Status::InvalidArgument("GaussianSmooth: negative FWHM");
  }
  if (fwhm_mm == 0.0) return v;

  const VoxelSpacing& sp = v.spacing();
  if (sp.dx_mm <= 0.0 || sp.dy_mm <= 0.0 || sp.dz_mm <= 0.0) {
    return Status::InvalidArgument("GaussianSmooth: non-positive voxel size");
  }
  Volume3D work = v;
  Volume3D out = v;

  const std::size_t nx = v.nx(), ny = v.ny(), nz = v.nz();
  // X axis.
  {
    const auto kernel = GaussianKernel(FwhmToSigma(fwhm_mm) / sp.dx_mm);
    for (std::size_t z = 0; z < nz; ++z) {
      for (std::size_t y = 0; y < ny; ++y) {
        ConvolveLine(work.data(), out.data(), 0 + nx * (y + ny * z), 1, nx,
                     kernel);
      }
    }
    std::swap(work, out);
  }
  // Y axis.
  {
    const auto kernel = GaussianKernel(FwhmToSigma(fwhm_mm) / sp.dy_mm);
    for (std::size_t z = 0; z < nz; ++z) {
      for (std::size_t x = 0; x < nx; ++x) {
        ConvolveLine(work.data(), out.data(), x + nx * ny * z, nx, ny, kernel);
      }
    }
    std::swap(work, out);
  }
  // Z axis.
  {
    const auto kernel = GaussianKernel(FwhmToSigma(fwhm_mm) / sp.dz_mm);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        ConvolveLine(work.data(), out.data(), x + nx * y, nx * ny, nz, kernel);
      }
    }
  }
  return out;
}

Result<Volume4D> GaussianSmooth4D(const Volume4D& v, double fwhm_mm) {
  if (v.empty()) return Status::InvalidArgument("GaussianSmooth4D: empty run");
  Volume4D out = v;
  for (std::size_t t = 0; t < v.nt(); ++t) {
    auto smoothed = GaussianSmooth(v.ExtractVolume(t), fwhm_mm);
    if (!smoothed.ok()) return smoothed.status();
    out.SetVolume(t, *smoothed);
  }
  return out;
}

}  // namespace neuroprint::image
