#include "image/mask.h"

#include <algorithm>
#include <cmath>

namespace neuroprint::image {
namespace {

// 98th percentile of the positive intensities (robust max: ignores hot
// pixels that a plain max would latch onto).
double RobustMax(const std::vector<float>& values) {
  std::vector<float> positive;
  positive.reserve(values.size());
  for (float v : values) {
    if (v > 0.0f) positive.push_back(v);
  }
  if (positive.empty()) return 0.0;
  const std::size_t k =
      std::min(positive.size() - 1,
               static_cast<std::size_t>(0.98 * static_cast<double>(positive.size())));
  std::nth_element(positive.begin(), positive.begin() + static_cast<std::ptrdiff_t>(k),
                   positive.end());
  return positive[k];
}

Result<Mask> MaskFromMeanVolume(const Volume3D& mean, double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument(
        "ComputeBrainMask: fraction must be in (0, 1)");
  }
  const double robust_max = RobustMax(mean.flat());
  if (robust_max <= 0.0) {
    return Status::FailedPrecondition(
        "ComputeBrainMask: no positive intensities (empty image?)");
  }
  const double threshold = fraction * robust_max;
  Mask mask(mean.nx(), mean.ny(), mean.nz());
  for (std::size_t z = 0; z < mean.nz(); ++z) {
    for (std::size_t y = 0; y < mean.ny(); ++y) {
      for (std::size_t x = 0; x < mean.nx(); ++x) {
        mask.set(x, y, z, static_cast<double>(mean.at(x, y, z)) > threshold);
      }
    }
  }
  return mask;
}

}  // namespace

std::size_t Mask::CountSet() const {
  std::size_t count = 0;
  for (std::uint8_t v : data_) count += v != 0 ? 1 : 0;
  return count;
}

Result<Mask> ComputeBrainMask(const Volume4D& run, double fraction) {
  if (run.empty()) return Status::InvalidArgument("ComputeBrainMask: empty run");
  Volume3D mean(run.nx(), run.ny(), run.nz());
  const double inv_nt = 1.0 / static_cast<double>(run.nt());
  for (std::size_t t = 0; t < run.nt(); ++t) {
    const float* vol = run.VolumePtr(t);
    for (std::size_t i = 0; i < run.voxels_per_volume(); ++i) {
      mean.flat()[i] += static_cast<float>(static_cast<double>(vol[i]) * inv_nt);
    }
  }
  return MaskFromMeanVolume(mean, fraction);
}

Result<Mask> ComputeBrainMask3D(const Volume3D& volume, double fraction) {
  if (volume.empty()) {
    return Status::InvalidArgument("ComputeBrainMask3D: empty volume");
  }
  return MaskFromMeanVolume(volume, fraction);
}

Mask Erode(const Mask& mask) {
  Mask out(mask.nx(), mask.ny(), mask.nz());
  for (std::size_t z = 0; z < mask.nz(); ++z) {
    for (std::size_t y = 0; y < mask.ny(); ++y) {
      for (std::size_t x = 0; x < mask.nx(); ++x) {
        if (!mask.at(x, y, z)) continue;
        const bool interior =
            x > 0 && x + 1 < mask.nx() && y > 0 && y + 1 < mask.ny() && z > 0 &&
            z + 1 < mask.nz() && mask.at(x - 1, y, z) && mask.at(x + 1, y, z) &&
            mask.at(x, y - 1, z) && mask.at(x, y + 1, z) &&
            mask.at(x, y, z - 1) && mask.at(x, y, z + 1);
        out.set(x, y, z, interior);
      }
    }
  }
  return out;
}

void ApplyMask(Volume4D& run, const Mask& mask) {
  NP_CHECK(run.nx() == mask.nx() && run.ny() == mask.ny() &&
           run.nz() == mask.nz())
      << "ApplyMask: dimension mismatch";
  for (std::size_t t = 0; t < run.nt(); ++t) {
    float* vol = run.VolumePtr(t);
    std::size_t i = 0;
    for (std::size_t z = 0; z < run.nz(); ++z) {
      for (std::size_t y = 0; y < run.ny(); ++y) {
        for (std::size_t x = 0; x < run.nx(); ++x, ++i) {
          if (!mask.at(x, y, z)) vol[i] = 0.0f;
        }
      }
    }
  }
}

}  // namespace neuroprint::image
