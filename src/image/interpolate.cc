#include "image/interpolate.h"

#include <cmath>

namespace neuroprint::image {

double SampleTrilinear(const Volume3D& v, double x, double y, double z,
                       double outside_value) {
  if (v.empty()) return outside_value;
  const double max_x = static_cast<double>(v.nx()) - 1.0;
  const double max_y = static_cast<double>(v.ny()) - 1.0;
  const double max_z = static_cast<double>(v.nz()) - 1.0;
  if (x < 0.0 || y < 0.0 || z < 0.0 || x > max_x || y > max_y || z > max_z) {
    return outside_value;
  }
  const auto x0 = static_cast<std::size_t>(std::floor(x));
  const auto y0 = static_cast<std::size_t>(std::floor(y));
  const auto z0 = static_cast<std::size_t>(std::floor(z));
  const std::size_t x1 = std::min(x0 + 1, v.nx() - 1);
  const std::size_t y1 = std::min(y0 + 1, v.ny() - 1);
  const std::size_t z1 = std::min(z0 + 1, v.nz() - 1);
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const double fz = z - static_cast<double>(z0);

  const double c000 = v.at(x0, y0, z0), c100 = v.at(x1, y0, z0);
  const double c010 = v.at(x0, y1, z0), c110 = v.at(x1, y1, z0);
  const double c001 = v.at(x0, y0, z1), c101 = v.at(x1, y0, z1);
  const double c011 = v.at(x0, y1, z1), c111 = v.at(x1, y1, z1);

  const double c00 = c000 * (1 - fx) + c100 * fx;
  const double c10 = c010 * (1 - fx) + c110 * fx;
  const double c01 = c001 * (1 - fx) + c101 * fx;
  const double c11 = c011 * (1 - fx) + c111 * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

double SampleNearest(const Volume3D& v, double x, double y, double z,
                     double outside_value) {
  if (v.empty()) return outside_value;
  const auto xi = static_cast<std::ptrdiff_t>(std::lround(x));
  const auto yi = static_cast<std::ptrdiff_t>(std::lround(y));
  const auto zi = static_cast<std::ptrdiff_t>(std::lround(z));
  if (xi < 0 || yi < 0 || zi < 0 ||
      xi >= static_cast<std::ptrdiff_t>(v.nx()) ||
      yi >= static_cast<std::ptrdiff_t>(v.ny()) ||
      zi >= static_cast<std::ptrdiff_t>(v.nz())) {
    return outside_value;
  }
  return v.at(static_cast<std::size_t>(xi), static_cast<std::size_t>(yi),
              static_cast<std::size_t>(zi));
}

}  // namespace neuroprint::image
