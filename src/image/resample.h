// Applying rigid transforms to volumes (the "apply" half of motion
// correction and registration-to-standard-space).

#ifndef NEUROPRINT_IMAGE_RESAMPLE_H_
#define NEUROPRINT_IMAGE_RESAMPLE_H_

#include "image/affine.h"
#include "image/volume.h"
#include "util/status.h"

namespace neuroprint::image {

/// Resamples `v` under the rigid transform `t`: output voxel p receives
/// the input intensity at T^{-1}(p), trilinearly interpolated. Rotations
/// are about the volume centre.
Result<Volume3D> ResampleRigid(const Volume3D& v, const RigidTransform& t);

/// Resamples `v` through an arbitrary 4x4 affine mapping output voxel
/// coordinates to input voxel coordinates.
Result<Volume3D> ResampleAffine(const Volume3D& v,
                                const linalg::Matrix& out_to_in);

/// Resizes `v` to new grid dimensions by scaling coordinates (the spatial
/// normalization step: all brains onto a standard grid).
Result<Volume3D> ResampleToGrid(const Volume3D& v, std::size_t nx,
                                std::size_t ny, std::size_t nz);

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_RESAMPLE_H_
