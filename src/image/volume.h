// Volumetric image types: Volume3D (one brain snapshot) and Volume4D (an
// fMRI run: three spatial dimensions plus time).
//
// Voxel data is float (a 64x64x40x400 run is ~26M voxels; double would
// double the footprint for no analytical benefit — all statistics are
// accumulated in double). Storage is x-fastest ("Fortran order", the NIfTI
// on-disk convention): index = x + nx*(y + ny*(z + nz*t)).

#ifndef NEUROPRINT_IMAGE_VOLUME_H_
#define NEUROPRINT_IMAGE_VOLUME_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace neuroprint::image {

/// Physical voxel geometry: spacing in millimetres and the repetition time
/// (seconds) separating consecutive volumes of a 4-D run.
struct VoxelSpacing {
  double dx_mm = 2.0;
  double dy_mm = 2.0;
  double dz_mm = 2.0;
  double tr_seconds = 0.72;
};

/// A single 3-D volume of float voxels.
class Volume3D {
 public:
  Volume3D() = default;

  Volume3D(std::size_t nx, std::size_t ny, std::size_t nz, float fill = 0.0f)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t x, std::size_t y, std::size_t z) {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    return data_[x + nx_ * (y + ny_ * z)];
  }
  float at(std::size_t x, std::size_t y, std::size_t z) const {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_);
    return data_[x + nx_ * (y + ny_ * z)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& flat() { return data_; }
  const std::vector<float>& flat() const { return data_; }

  VoxelSpacing& spacing() { return spacing_; }
  const VoxelSpacing& spacing() const { return spacing_; }

  /// Mean over all voxels (0 for empty).
  double Mean() const;

  /// True if every voxel is finite.
  bool AllFinite() const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<float> data_;
  VoxelSpacing spacing_;
};

/// A 4-D fMRI run: nt volumes of nx * ny * nz voxels.
class Volume4D {
 public:
  Volume4D() = default;

  Volume4D(std::size_t nx, std::size_t ny, std::size_t nz, std::size_t nt,
           float fill = 0.0f)
      : nx_(nx), ny_(ny), nz_(nz), nt_(nt), data_(nx * ny * nz * nt, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t nt() const { return nt_; }
  std::size_t voxels_per_volume() const { return nx_ * ny_ * nz_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t x, std::size_t y, std::size_t z, std::size_t t) {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_ && t < nt_);
    return data_[x + nx_ * (y + ny_ * (z + nz_ * t))];
  }
  float at(std::size_t x, std::size_t y, std::size_t z, std::size_t t) const {
    NP_DCHECK(x < nx_ && y < ny_ && z < nz_ && t < nt_);
    return data_[x + nx_ * (y + ny_ * (z + nz_ * t))];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& flat() { return data_; }
  const std::vector<float>& flat() const { return data_; }

  /// Pointer to the start of volume t's voxel block.
  float* VolumePtr(std::size_t t) {
    NP_DCHECK(t < nt_);
    return data_.data() + t * voxels_per_volume();
  }
  const float* VolumePtr(std::size_t t) const {
    NP_DCHECK(t < nt_);
    return data_.data() + t * voxels_per_volume();
  }

  /// Copies volume t out as a Volume3D (spacing carried over).
  Volume3D ExtractVolume(std::size_t t) const;

  /// Overwrites volume t with `v` (dimensions must match).
  void SetVolume(std::size_t t, const Volume3D& v);

  /// The time series of one voxel as a double vector.
  std::vector<double> VoxelTimeSeries(std::size_t x, std::size_t y,
                                      std::size_t z) const;

  /// Writes `series` (length nt) into the voxel's time axis.
  void SetVoxelTimeSeries(std::size_t x, std::size_t y, std::size_t z,
                          const std::vector<double>& series);

  VoxelSpacing& spacing() { return spacing_; }
  const VoxelSpacing& spacing() const { return spacing_; }

  bool AllFinite() const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0, nt_ = 0;
  std::vector<float> data_;
  VoxelSpacing spacing_;
};

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_VOLUME_H_
