#include "image/resample.h"

#include "image/interpolate.h"

namespace neuroprint::image {

Result<Volume3D> ResampleRigid(const Volume3D& v, const RigidTransform& t) {
  if (v.empty()) return Status::InvalidArgument("ResampleRigid: empty volume");
  const double cx = 0.5 * (static_cast<double>(v.nx()) - 1.0);
  const double cy = 0.5 * (static_cast<double>(v.ny()) - 1.0);
  const double cz = 0.5 * (static_cast<double>(v.nz()) - 1.0);
  const linalg::Matrix forward = RigidToAffine(t, cx, cy, cz);
  auto inverse = InvertAffine(forward);
  if (!inverse.ok()) return inverse.status();
  return ResampleAffine(v, *inverse);
}

Result<Volume3D> ResampleAffine(const Volume3D& v,
                                const linalg::Matrix& out_to_in) {
  if (v.empty()) return Status::InvalidArgument("ResampleAffine: empty volume");
  if (out_to_in.rows() != 4 || out_to_in.cols() != 4) {
    return Status::InvalidArgument("ResampleAffine: expected a 4x4 affine");
  }
  Volume3D out(v.nx(), v.ny(), v.nz());
  out.spacing() = v.spacing();
  for (std::size_t z = 0; z < v.nz(); ++z) {
    for (std::size_t y = 0; y < v.ny(); ++y) {
      for (std::size_t x = 0; x < v.nx(); ++x) {
        double sx, sy, sz;
        ApplyAffine(out_to_in, static_cast<double>(x), static_cast<double>(y),
                    static_cast<double>(z), sx, sy, sz);
        out.at(x, y, z) = static_cast<float>(SampleTrilinear(v, sx, sy, sz));
      }
    }
  }
  return out;
}

Result<Volume3D> ResampleToGrid(const Volume3D& v, std::size_t nx,
                                std::size_t ny, std::size_t nz) {
  if (v.empty()) return Status::InvalidArgument("ResampleToGrid: empty volume");
  if (nx == 0 || ny == 0 || nz == 0) {
    return Status::InvalidArgument("ResampleToGrid: zero output dimension");
  }
  Volume3D out(nx, ny, nz);
  out.spacing() = v.spacing();
  out.spacing().dx_mm *= static_cast<double>(v.nx()) / static_cast<double>(nx);
  out.spacing().dy_mm *= static_cast<double>(v.ny()) / static_cast<double>(ny);
  out.spacing().dz_mm *= static_cast<double>(v.nz()) / static_cast<double>(nz);
  const double sx = nx > 1 ? static_cast<double>(v.nx() - 1) /
                                 static_cast<double>(nx - 1)
                           : 0.0;
  const double sy = ny > 1 ? static_cast<double>(v.ny() - 1) /
                                 static_cast<double>(ny - 1)
                           : 0.0;
  const double sz = nz > 1 ? static_cast<double>(v.nz() - 1) /
                                 static_cast<double>(nz - 1)
                           : 0.0;
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        out.at(x, y, z) = static_cast<float>(
            SampleTrilinear(v, static_cast<double>(x) * sx,
                            static_cast<double>(y) * sy,
                            static_cast<double>(z) * sz));
      }
    }
  }
  return out;
}

}  // namespace neuroprint::image
