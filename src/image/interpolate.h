// Spatial interpolation of Volume3D at continuous voxel coordinates.

#ifndef NEUROPRINT_IMAGE_INTERPOLATE_H_
#define NEUROPRINT_IMAGE_INTERPOLATE_H_

#include "image/volume.h"

namespace neuroprint::image {

/// Trilinear interpolation at (x, y, z) in voxel coordinates. Coordinates
/// outside the volume return `outside_value` (default 0, the background of
/// a skull-stripped image).
double SampleTrilinear(const Volume3D& v, double x, double y, double z,
                       double outside_value = 0.0);

/// Nearest-neighbour sampling (used for label volumes, where averaging
/// labels would be meaningless).
double SampleNearest(const Volume3D& v, double x, double y, double z,
                     double outside_value = 0.0);

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_INTERPOLATE_H_
