// Separable Gaussian spatial smoothing, parameterized by FWHM in
// millimetres as is conventional in fMRI pipelines.

#ifndef NEUROPRINT_IMAGE_SMOOTH_H_
#define NEUROPRINT_IMAGE_SMOOTH_H_

#include "image/volume.h"
#include "util/status.h"

namespace neuroprint::image {

/// Smooths `v` with an isotropic Gaussian of the given full-width at half
/// maximum (millimetres; converted per-axis using the voxel spacing).
/// FWHM 0 returns the input unchanged.
Result<Volume3D> GaussianSmooth(const Volume3D& v, double fwhm_mm);

/// Smooths every volume of a 4-D run.
Result<Volume4D> GaussianSmooth4D(const Volume4D& v, double fwhm_mm);

/// Converts FWHM to the Gaussian sigma (FWHM = 2 sqrt(2 ln 2) sigma).
double FwhmToSigma(double fwhm);

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_SMOOTH_H_
