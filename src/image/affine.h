// Rigid-body (6 degree-of-freedom) transforms and 4x4 affine algebra in
// voxel space. Motion correction and registration estimate and apply these.

#ifndef NEUROPRINT_IMAGE_AFFINE_H_
#define NEUROPRINT_IMAGE_AFFINE_H_

#include <array>

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::image {

/// A rigid-body motion: rotations (radians, applied as Rz * Ry * Rx about
/// the volume centre) followed by a translation (in voxels).
struct RigidTransform {
  double translate_x = 0.0;
  double translate_y = 0.0;
  double translate_z = 0.0;
  double rotate_x = 0.0;
  double rotate_y = 0.0;
  double rotate_z = 0.0;

  /// The six parameters as an array (order: tx, ty, tz, rx, ry, rz).
  std::array<double, 6> AsArray() const {
    return {translate_x, translate_y, translate_z,
            rotate_x, rotate_y, rotate_z};
  }
  static RigidTransform FromArray(const std::array<double, 6>& p) {
    return {p[0], p[1], p[2], p[3], p[4], p[5]};
  }

  /// True if every parameter magnitude is below `tol`.
  bool IsApproxIdentity(double tol = 1e-12) const;
};

/// Homogeneous 4x4 matrix for the rigid transform, rotating about the
/// given centre point (voxel coordinates).
linalg::Matrix RigidToAffine(const RigidTransform& t, double cx, double cy,
                             double cz);

/// Applies a 4x4 affine to a point (x, y, z, 1).
void ApplyAffine(const linalg::Matrix& affine, double x, double y, double z,
                 double& out_x, double& out_y, double& out_z);

/// Inverse of a 4x4 affine; fails on singular matrices.
Result<linalg::Matrix> InvertAffine(const linalg::Matrix& affine);

}  // namespace neuroprint::image

#endif  // NEUROPRINT_IMAGE_AFFINE_H_
