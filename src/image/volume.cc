#include "image/volume.h"

#include <cmath>

namespace neuroprint::image {

double Volume3D::Mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v);
  return sum / static_cast<double>(data_.size());
}

bool Volume3D::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Volume3D Volume4D::ExtractVolume(std::size_t t) const {
  NP_CHECK_LT(t, nt_);
  Volume3D v(nx_, ny_, nz_);
  const float* src = VolumePtr(t);
  std::copy(src, src + voxels_per_volume(), v.data());
  v.spacing() = spacing_;
  return v;
}

void Volume4D::SetVolume(std::size_t t, const Volume3D& v) {
  NP_CHECK_LT(t, nt_);
  NP_CHECK(v.nx() == nx_ && v.ny() == ny_ && v.nz() == nz_)
      << "SetVolume: dimension mismatch";
  std::copy(v.data(), v.data() + voxels_per_volume(), VolumePtr(t));
}

std::vector<double> Volume4D::VoxelTimeSeries(std::size_t x, std::size_t y,
                                              std::size_t z) const {
  NP_CHECK(x < nx_ && y < ny_ && z < nz_);
  std::vector<double> series(nt_);
  const std::size_t stride = voxels_per_volume();
  const std::size_t base = x + nx_ * (y + ny_ * z);
  for (std::size_t t = 0; t < nt_; ++t) {
    series[t] = data_[base + t * stride];
  }
  return series;
}

void Volume4D::SetVoxelTimeSeries(std::size_t x, std::size_t y, std::size_t z,
                                  const std::vector<double>& series) {
  NP_CHECK(x < nx_ && y < ny_ && z < nz_);
  NP_CHECK_EQ(series.size(), nt_);
  const std::size_t stride = voxels_per_volume();
  const std::size_t base = x + nx_ * (y + ny_ * z);
  for (std::size_t t = 0; t < nt_; ++t) {
    data_[base + t * stride] = static_cast<float>(series[t]);
  }
}

bool Volume4D::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace neuroprint::image
