// NIfTI-1 header model and its 348-byte binary codec.
//
// The header is serialized field-by-field (no struct memcpy) so the codec
// is layout- and endianness-portable: files written by big-endian scanners
// are detected via the sizeof_hdr sentinel and byte-swapped on read.

#ifndef NEUROPRINT_NIFTI_NIFTI_HEADER_H_
#define NEUROPRINT_NIFTI_NIFTI_HEADER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint::nifti {

/// On-disk voxel data type codes (the NIfTI-1 subset neuroprint supports).
enum class DataType : std::int16_t {
  kUint8 = 2,
  kInt16 = 4,
  kInt32 = 8,
  kFloat32 = 16,
  kFloat64 = 64,
};

/// Bits per voxel for a data type code.
Result<int> BitsPerVoxel(DataType type);

/// True if `code` is one of the supported DataType values.
bool IsSupportedDataType(std::int16_t code);

/// Size of the NIfTI-1 header on disk.
inline constexpr std::size_t kNiftiHeaderSize = 348;

/// Decoded NIfTI-1 header. Only the fields the library acts on are modelled
/// explicitly; everything else round-trips through defaults.
struct NiftiHeader {
  /// dim[0] = number of dimensions; dim[1..7] = extent per dimension.
  std::array<std::int16_t, 8> dim = {3, 1, 1, 1, 1, 1, 1, 1};
  DataType datatype = DataType::kFloat32;
  /// pixdim[1..3] voxel size (mm), pixdim[4] TR (seconds by convention
  /// here; xyzt_units records the actual units).
  std::array<float, 8> pixdim = {1.f, 1.f, 1.f, 1.f, 1.f, 1.f, 1.f, 1.f};
  float vox_offset = 352.0f;  ///< Data offset in a single .nii file.
  float scl_slope = 1.0f;     ///< Stored-to-real scaling: real = slope*v + inter.
  float scl_inter = 0.0f;
  float cal_min = 0.0f;
  float cal_max = 0.0f;
  float toffset = 0.0f;
  std::string description;  ///< Up to 79 chars.
  std::int16_t qform_code = 0;
  std::int16_t sform_code = 1;
  /// sform affine rows (voxel indices -> mm coordinates).
  std::array<std::array<float, 4>, 3> srow = {{{1, 0, 0, 0},
                                               {0, 1, 0, 0},
                                               {0, 0, 1, 0}}};
  char xyzt_units = 0x0A;  ///< NIFTI_UNITS_MM | NIFTI_UNITS_SEC.

  /// Number of voxels implied by dim (product over dim[1..dim[0]]).
  Result<std::size_t> VoxelCount() const;

  /// Validates structural invariants (dim range, supported datatype,
  /// positive extents, sane vox_offset).
  Status Validate() const;
};

/// Serializes to exactly kNiftiHeaderSize bytes (little-endian, "n+1"
/// single-file magic).
std::vector<std::uint8_t> EncodeHeader(const NiftiHeader& header);

/// Parses a header from `bytes` (at least kNiftiHeaderSize). Detects and
/// handles byte-swapped (big-endian) headers. `swapped` (optional out)
/// reports whether swapping was applied — the voxel data needs the same
/// treatment.
Result<NiftiHeader> DecodeHeader(const std::vector<std::uint8_t>& bytes,
                                 bool* swapped = nullptr);

}  // namespace neuroprint::nifti

#endif  // NEUROPRINT_NIFTI_NIFTI_HEADER_H_
