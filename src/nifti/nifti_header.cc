#include "nifti/nifti_header.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"
#include "util/endian.h"
#include "util/string_util.h"

namespace neuroprint::nifti {
namespace {

// Little-endian byte-buffer writer with fixed-offset puts. Encoding goes
// through WriteLE, so it is correct on any host byte order.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t size) : bytes_(size, 0) {}

  void PutI16(std::size_t offset, std::int16_t v) { Put(offset, v); }
  void PutI32(std::size_t offset, std::int32_t v) { Put(offset, v); }
  void PutF32(std::size_t offset, float v) { Put(offset, v); }
  void PutBytesRaw(std::size_t offset, const void* src, std::size_t n) {
    NP_CHECK_LE(offset + n, bytes_.size());
    std::memcpy(bytes_.data() + offset, src, n);
  }

  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  template <typename T>
  void Put(std::size_t offset, T v) {
    NP_CHECK_LE(offset + sizeof(T), bytes_.size());
    WriteLE(v, bytes_.data() + offset);
  }

  std::vector<std::uint8_t> bytes_;
};

// Fixed-offset reader; `swap` selects big-endian decoding for byte-swapped
// NIfTI files.
class ByteReader {
 public:
  ByteReader(const std::vector<std::uint8_t>& bytes, bool swap)
      : bytes_(bytes), swap_(swap) {}

  std::int16_t GetI16(std::size_t offset) const {
    return Get<std::int16_t>(offset);
  }
  std::int32_t GetI32(std::size_t offset) const {
    return Get<std::int32_t>(offset);
  }
  float GetF32(std::size_t offset) const { return Get<float>(offset); }
  void GetRaw(std::size_t offset, void* dst, std::size_t n) const {
    NP_CHECK_LE(offset + n, bytes_.size());
    std::memcpy(dst, bytes_.data() + offset, n);
  }

 private:
  template <typename T>
  T Get(std::size_t offset) const {
    NP_CHECK_LE(offset + sizeof(T), bytes_.size());
    const std::uint8_t* src = bytes_.data() + offset;
    return swap_ ? ReadBE<T>(src) : ReadLE<T>(src);
  }

  const std::vector<std::uint8_t>& bytes_;
  bool swap_;
};

// Header field offsets (NIfTI-1 specification).
constexpr std::size_t kOffSizeofHdr = 0;
constexpr std::size_t kOffDim = 40;
constexpr std::size_t kOffDatatype = 70;
constexpr std::size_t kOffBitpix = 72;
constexpr std::size_t kOffPixdim = 76;
constexpr std::size_t kOffVoxOffset = 108;
constexpr std::size_t kOffSclSlope = 112;
constexpr std::size_t kOffSclInter = 116;
constexpr std::size_t kOffXyztUnits = 123;
constexpr std::size_t kOffCalMax = 124;
constexpr std::size_t kOffCalMin = 128;
constexpr std::size_t kOffToffset = 136;
constexpr std::size_t kOffDescrip = 148;
constexpr std::size_t kOffQformCode = 252;
constexpr std::size_t kOffSformCode = 254;
constexpr std::size_t kOffSrowX = 280;
constexpr std::size_t kOffSrowY = 296;
constexpr std::size_t kOffSrowZ = 312;
constexpr std::size_t kOffMagic = 344;

}  // namespace

Result<int> BitsPerVoxel(DataType type) {
  switch (type) {
    case DataType::kUint8:
      return 8;
    case DataType::kInt16:
      return 16;
    case DataType::kInt32:
    case DataType::kFloat32:
      return 32;
    case DataType::kFloat64:
      return 64;
  }
  return Status::InvalidArgument(
      StrFormat("unsupported NIfTI datatype code %d", static_cast<int>(type)));
}

bool IsSupportedDataType(std::int16_t code) {
  switch (static_cast<DataType>(code)) {
    case DataType::kUint8:
    case DataType::kInt16:
    case DataType::kInt32:
    case DataType::kFloat32:
    case DataType::kFloat64:
      return true;
  }
  return false;
}

Result<std::size_t> NiftiHeader::VoxelCount() const {
  if (dim[0] < 1 || dim[0] > 7) {
    return Status::CorruptData(
        StrFormat("NIfTI dim[0] out of range: %d", dim[0]));
  }
  std::size_t count = 1;
  for (int d = 1; d <= dim[0]; ++d) {
    if (dim[d] < 1) {
      return Status::CorruptData(
          StrFormat("NIfTI dim[%d] non-positive: %d", d, dim[d]));
    }
    const std::size_t extent = static_cast<std::size_t>(dim[d]);
    // Overflow-checked multiply: 7 dims of 32767 would wrap std::size_t
    // and turn an absurd header into a tiny, "valid" allocation.
    if (count > std::numeric_limits<std::size_t>::max() / extent) {
      return Status::CorruptData(
          StrFormat("NIfTI dim[] product overflows (dim[%d] = %d)", d,
                    dim[d]));
    }
    count *= extent;
  }
  return count;
}

Status NiftiHeader::Validate() const {
  Result<std::size_t> count = VoxelCount();
  if (!count.ok()) return count.status();
  if (!IsSupportedDataType(static_cast<std::int16_t>(datatype))) {
    return Status::InvalidArgument(
        StrFormat("unsupported NIfTI datatype code %d",
                  static_cast<int>(datatype)));
  }
  // The < comparison alone would pass NaN through, and the later
  // float -> size_t conversion of a NaN/huge offset is UB.
  constexpr float kMaxVoxOffset = 1.0e9f;
  if (!std::isfinite(vox_offset) || vox_offset > kMaxVoxOffset) {
    return Status::CorruptData(
        StrFormat("NIfTI vox_offset %g is not a plausible file offset",
                  static_cast<double>(vox_offset)));
  }
  if (vox_offset < static_cast<float>(kNiftiHeaderSize)) {
    return Status::CorruptData(
        StrFormat("NIfTI vox_offset %.1f overlaps the header",
                  static_cast<double>(vox_offset)));
  }
  for (int d = 5; d <= 7; ++d) {
    if (dim[0] >= d && dim[d] > 1) {
      return Status::Unimplemented(
          "NIfTI images with more than 4 dimensions are not supported");
    }
  }
  return Status::OK();
}

std::vector<std::uint8_t> EncodeHeader(const NiftiHeader& header) {
  ByteWriter w(kNiftiHeaderSize);
  w.PutI32(kOffSizeofHdr, static_cast<std::int32_t>(kNiftiHeaderSize));
  for (std::size_t d = 0; d < 8; ++d) {
    w.PutI16(kOffDim + 2 * d, header.dim[d]);
  }
  w.PutI16(kOffDatatype, static_cast<std::int16_t>(header.datatype));
  const Result<int> bits = BitsPerVoxel(header.datatype);
  w.PutI16(kOffBitpix, static_cast<std::int16_t>(bits.ok() ? *bits : 0));
  for (std::size_t d = 0; d < 8; ++d) {
    w.PutF32(kOffPixdim + 4 * d, header.pixdim[d]);
  }
  w.PutF32(kOffVoxOffset, header.vox_offset);
  w.PutF32(kOffSclSlope, header.scl_slope);
  w.PutF32(kOffSclInter, header.scl_inter);
  char units = header.xyzt_units;
  w.PutBytesRaw(kOffXyztUnits, &units, 1);
  w.PutF32(kOffCalMax, header.cal_max);
  w.PutF32(kOffCalMin, header.cal_min);
  w.PutF32(kOffToffset, header.toffset);
  char descrip[80] = {0};
  std::snprintf(descrip, sizeof(descrip), "%s", header.description.c_str());
  w.PutBytesRaw(kOffDescrip, descrip, sizeof(descrip));
  w.PutI16(kOffQformCode, header.qform_code);
  w.PutI16(kOffSformCode, header.sform_code);
  const std::size_t srow_offsets[3] = {kOffSrowX, kOffSrowY, kOffSrowZ};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      w.PutF32(srow_offsets[r] + 4 * c, header.srow[r][c]);
    }
  }
  const char magic[4] = {'n', '+', '1', '\0'};
  w.PutBytesRaw(kOffMagic, magic, 4);
  return w.Take();
}

Result<NiftiHeader> DecodeHeader(const std::vector<std::uint8_t>& bytes,
                                 bool* swapped) {
  if (bytes.size() < kNiftiHeaderSize) {
    return Status::CorruptData(
        StrFormat("NIfTI header truncated: %zu bytes (need %zu)",
                  bytes.size(), kNiftiHeaderSize));
  }

  // sizeof_hdr doubles as the endianness sentinel: 348 read straight means
  // native order; 348 after swapping means the file is byte-swapped.
  ByteReader native(bytes, /*swap=*/false);
  bool swap = false;
  if (native.GetI32(kOffSizeofHdr) != static_cast<std::int32_t>(kNiftiHeaderSize)) {
    ByteReader swapped_reader(bytes, /*swap=*/true);
    if (swapped_reader.GetI32(kOffSizeofHdr) !=
        static_cast<std::int32_t>(kNiftiHeaderSize)) {
      return Status::CorruptData("not a NIfTI-1 file (bad sizeof_hdr)");
    }
    swap = true;
  }
  ByteReader r(bytes, swap);

  char magic[4];
  r.GetRaw(kOffMagic, magic, 4);
  const bool single_file = std::memcmp(magic, "n+1", 4) == 0;
  const bool pair_file = std::memcmp(magic, "ni1", 4) == 0;
  if (!single_file && !pair_file) {
    return Status::CorruptData("not a NIfTI-1 file (bad magic)");
  }
  if (pair_file) {
    return Status::Unimplemented(
        "two-file NIfTI (.hdr/.img) pairs are not supported; use .nii");
  }

  NiftiHeader header;
  for (std::size_t d = 0; d < 8; ++d) {
    header.dim[d] = r.GetI16(kOffDim + 2 * d);
  }
  const std::int16_t datatype_code = r.GetI16(kOffDatatype);
  if (!IsSupportedDataType(datatype_code)) {
    return Status::Unimplemented(
        StrFormat("unsupported NIfTI datatype code %d", datatype_code));
  }
  header.datatype = static_cast<DataType>(datatype_code);
  for (std::size_t d = 0; d < 8; ++d) {
    header.pixdim[d] = r.GetF32(kOffPixdim + 4 * d);
  }
  header.vox_offset = r.GetF32(kOffVoxOffset);
  header.scl_slope = r.GetF32(kOffSclSlope);
  header.scl_inter = r.GetF32(kOffSclInter);
  r.GetRaw(kOffXyztUnits, &header.xyzt_units, 1);
  header.cal_max = r.GetF32(kOffCalMax);
  header.cal_min = r.GetF32(kOffCalMin);
  header.toffset = r.GetF32(kOffToffset);
  char descrip[81] = {0};
  r.GetRaw(kOffDescrip, descrip, 80);
  header.description = descrip;
  header.qform_code = r.GetI16(kOffQformCode);
  header.sform_code = r.GetI16(kOffSformCode);
  const std::size_t srow_offsets[3] = {kOffSrowX, kOffSrowY, kOffSrowZ};
  for (std::size_t row = 0; row < 3; ++row) {
    for (std::size_t c = 0; c < 4; ++c) {
      header.srow[row][c] = r.GetF32(srow_offsets[row] + 4 * c);
    }
  }

  const Status valid = header.Validate();
  if (!valid.ok()) return valid;
  if (swapped != nullptr) *swapped = swap;
  return header;
}

}  // namespace neuroprint::nifti
