#include "nifti/nifti_stream.h"

#include <zlib.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "util/fault.h"
#include "util/string_util.h"

namespace neuroprint::nifti {
namespace {

// Input window for the chunked inflater: large enough that syscall
// overhead is negligible, small enough that the decoder's resident set
// is independent of the compressed file size.
constexpr std::size_t kInputChunk = 64u << 10;

}  // namespace

// ---------------------------------------------------------------------------
// GzipStreamReader

GzipStreamReader::GzipStreamReader(GzipStreamReader&& other) noexcept =
    default;

GzipStreamReader& GzipStreamReader::operator=(
    GzipStreamReader&& other) noexcept {
  if (this != &other) {
    // Swap, so `other`'s destructor releases our previous inflate state.
    std::swap(path_, other.path_);
    std::swap(file_, other.file_);
    std::swap(strm_, other.strm_);
    std::swap(input_, other.input_);
    std::swap(input_pos_, other.input_pos_);
    std::swap(input_len_, other.input_len_);
    std::swap(file_exhausted_, other.file_exhausted_);
    std::swap(finished_, other.finished_);
    std::swap(compressed_consumed_, other.compressed_consumed_);
    std::swap(decoded_bytes_, other.decoded_bytes_);
  }
  return *this;
}

GzipStreamReader::~GzipStreamReader() {
  if (strm_ != nullptr) inflateEnd(strm_.get());
}

Result<GzipStreamReader> GzipStreamReader::Open(const std::string& path) {
  GzipStreamReader reader;
  reader.path_ = path;
  reader.file_.open(path, std::ios::binary);
  if (!reader.file_) {
    return Status::IOError("cannot open gzip file: " + path);
  }
  reader.strm_ = std::make_unique<z_stream_s>();
  std::memset(reader.strm_.get(), 0, sizeof(z_stream_s));
  // 15 + 16: maximum inflate window, gzip wrapper required.
  if (inflateInit2(reader.strm_.get(), 15 + 16) != Z_OK) {
    reader.strm_.reset();
    return Status::Internal("inflateInit failed: " + path);
  }
  reader.input_.resize(kInputChunk);
  return reader;
}

Status GzipStreamReader::FillInput(std::size_t want) {
  if (input_len_ - input_pos_ >= want || file_exhausted_) {
    return Status::OK();
  }
  if (input_pos_ > 0) {
    std::memmove(input_.data(), input_.data() + input_pos_,
                 input_len_ - input_pos_);
    input_len_ -= input_pos_;
    input_pos_ = 0;
  }
  while (input_len_ < std::max<std::size_t>(want, 1) && !file_exhausted_) {
    file_.read(reinterpret_cast<char*>(input_.data() + input_len_),
               static_cast<std::streamsize>(input_.size() - input_len_));
    const std::streamsize got = file_.gcount();
    if (got > 0) input_len_ += static_cast<std::size_t>(got);
    if (file_.eof()) {
      file_exhausted_ = true;
      break;
    }
    if (!file_) return Status::IOError("read failed: " + path_);
    if (got == 0) {
      file_exhausted_ = true;
      break;
    }
  }
  return Status::OK();
}

Result<std::size_t> GzipStreamReader::Read(std::uint8_t* out,
                                           std::size_t count) {
  if (count == 0 || finished_) return std::size_t{0};
  std::size_t produced = 0;
  while (produced < count && !finished_) {
    NP_RETURN_IF_ERROR(FillInput(1));
    const std::size_t avail_before = input_len_ - input_pos_;
    strm_->next_in = input_.data() + input_pos_;
    strm_->avail_in = static_cast<unsigned>(avail_before);
    strm_->next_out = out + produced;
    strm_->avail_out = static_cast<unsigned>(std::min<std::size_t>(
        count - produced, std::numeric_limits<unsigned>::max()));
    const unsigned out_before = strm_->avail_out;

    const int ret = inflate(strm_.get(), Z_NO_FLUSH);

    const std::size_t consumed = avail_before - strm_->avail_in;
    input_pos_ += consumed;
    compressed_consumed_ += consumed;
    const std::size_t got = out_before - strm_->avail_out;
    produced += got;
    decoded_bytes_ += got;

    if (ret == Z_STREAM_END) {
      // Concatenated gzip members decode seamlessly; a clean end followed
      // by anything that is not another member is the end of the stream
      // (trailing garbage ignored, matching gzread).
      NP_RETURN_IF_ERROR(FillInput(2));
      const std::size_t left = input_len_ - input_pos_;
      if (left >= 2 && input_[input_pos_] == 0x1f &&
          input_[input_pos_ + 1] == 0x8b) {
        if (inflateReset(strm_.get()) != Z_OK) {
          return Status::Internal("inflateReset failed: " + path_);
        }
        continue;
      }
      finished_ = true;
      break;
    }
    if (ret == Z_OK || ret == Z_BUF_ERROR) {
      if (got == 0 && strm_->avail_in == 0 && file_exhausted_ &&
          input_pos_ == input_len_) {
        // Mid-member end of file: the member never reached Z_STREAM_END.
        return Status::CorruptData(StrFormat(
            "gzip stream truncated: %llu compressed bytes consumed, %llu "
            "bytes decoded before unexpected end of %s",
            static_cast<unsigned long long>(compressed_consumed_),
            static_cast<unsigned long long>(decoded_bytes_), path_.c_str()));
      }
      continue;
    }
    return Status::CorruptData(StrFormat(
        "gzip decompression failed after %llu compressed bytes (%llu bytes "
        "decoded): %s",
        static_cast<unsigned long long>(compressed_consumed_),
        static_cast<unsigned long long>(decoded_bytes_), path_.c_str()));
  }
  return produced;
}

// ---------------------------------------------------------------------------
// NiftiStreamReader

Result<NiftiStreamReader> NiftiStreamReader::Open(const std::string& path) {
  NP_FAULT_POINT("nifti.read");
  NiftiStreamReader reader;
  reader.path_ = path;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::IOError("cannot open: " + path);
    std::uint8_t magic[2] = {0, 0};
    probe.read(reinterpret_cast<char*>(magic), 2);
    reader.gzipped_ =
        probe.gcount() == 2 && magic[0] == 0x1f && magic[1] == 0x8b;
  }

  std::vector<std::uint8_t> header_bytes(kNiftiHeaderSize);
  if (reader.gzipped_) {
    auto gz = GzipStreamReader::Open(path);
    if (!gz.ok()) return gz.status();
    reader.gzip_ =
        std::make_unique<GzipStreamReader>(std::move(gz).value());
    std::size_t filled = 0;
    while (filled < header_bytes.size()) {
      auto got = reader.gzip_->Read(header_bytes.data() + filled,
                                    header_bytes.size() - filled);
      if (!got.ok()) return got.status();
      if (*got == 0) break;  // Short header: DecodeHeader reports it.
      filled += *got;
    }
    header_bytes.resize(filled);
    reader.gzip_plain_pos_ = filled;
  } else {
    reader.raw_.open(path, std::ios::binary);
    if (!reader.raw_) return Status::IOError("cannot open: " + path);
    reader.raw_.read(reinterpret_cast<char*>(header_bytes.data()),
                     static_cast<std::streamsize>(header_bytes.size()));
    header_bytes.resize(static_cast<std::size_t>(reader.raw_.gcount()));
    reader.raw_.clear();
  }

  auto header = DecodeHeader(header_bytes, &reader.swapped_);
  if (!header.ok()) return header.status();
  reader.header_ = std::move(header).value();

  reader.nx_ = static_cast<std::size_t>(reader.header_.dim[1]);
  reader.ny_ = reader.header_.dim[0] >= 2
                   ? static_cast<std::size_t>(reader.header_.dim[2])
                   : 1;
  reader.nz_ = reader.header_.dim[0] >= 3
                   ? static_cast<std::size_t>(reader.header_.dim[3])
                   : 1;
  reader.nt_ = reader.header_.dim[0] >= 4
                   ? static_cast<std::size_t>(reader.header_.dim[4])
                   : 1;
  const Result<int> bits = BitsPerVoxel(reader.header_.datatype);
  if (!bits.ok()) return bits.status();
  reader.voxel_bytes_ = static_cast<std::size_t>(*bits) / 8;
  reader.data_offset_ =
      static_cast<std::uint64_t>(reader.header_.vox_offset);
  return reader;
}

image::VoxelSpacing NiftiStreamReader::spacing() const {
  image::VoxelSpacing s;
  s.dx_mm = header_.pixdim[1];
  s.dy_mm = header_.pixdim[2];
  s.dz_mm = header_.pixdim[3];
  s.tr_seconds = header_.pixdim[4];
  return s;
}

Status NiftiStreamReader::GzipSeekTo(std::uint64_t offset) {
  if (gzip_ == nullptr || offset < gzip_plain_pos_) {
    // Backwards seek: gzip streams only inflate forward, so reopen and
    // decode up to the target again.
    auto reopened = GzipStreamReader::Open(path_);
    if (!reopened.ok()) return reopened.status();
    gzip_ = std::make_unique<GzipStreamReader>(std::move(reopened).value());
    gzip_plain_pos_ = 0;
  }
  std::vector<std::uint8_t> skip(kInputChunk);
  while (gzip_plain_pos_ < offset) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(skip.size(), offset - gzip_plain_pos_));
    auto got = gzip_->Read(skip.data(), want);
    if (!got.ok()) return got.status();
    if (*got == 0) {
      return Status::CorruptData(StrFormat(
          "NIfTI voxel data truncated: gzip stream ended at %llu bytes, "
          "frame data expected at %llu: %s",
          static_cast<unsigned long long>(gzip_plain_pos_),
          static_cast<unsigned long long>(offset), path_.c_str()));
    }
    gzip_plain_pos_ += *got;
  }
  return Status::OK();
}

Status NiftiStreamReader::ReadFrame(std::size_t t, std::vector<float>* out) {
  if (t >= nt_) {
    return Status::InvalidArgument(StrFormat(
        "NiftiStreamReader: frame %zu out of range (%zu frames)", t, nt_));
  }
  const std::size_t count = frame_voxels();
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(count) * voxel_bytes_;
  const std::uint64_t offset =
      data_offset_ + static_cast<std::uint64_t>(t) * frame_bytes;
  encoded_.resize(static_cast<std::size_t>(frame_bytes));

  if (gzipped_) {
    NP_RETURN_IF_ERROR(GzipSeekTo(offset));
    std::size_t filled = 0;
    while (filled < encoded_.size()) {
      auto got =
          gzip_->Read(encoded_.data() + filled, encoded_.size() - filled);
      if (!got.ok()) return got.status();
      if (*got == 0) {
        return Status::CorruptData(StrFormat(
            "NIfTI voxel data truncated: need %zu bytes at offset %llu, "
            "have %zu",
            static_cast<std::size_t>(frame_bytes),
            static_cast<unsigned long long>(offset), filled));
      }
      filled += *got;
      gzip_plain_pos_ += *got;
    }
  } else {
    raw_.seekg(static_cast<std::streamoff>(offset));
    raw_.read(reinterpret_cast<char*>(encoded_.data()),
              static_cast<std::streamsize>(encoded_.size()));
    if (!raw_) {
      raw_.clear();
      return Status::CorruptData(StrFormat(
          "NIfTI voxel data truncated: need %zu bytes at offset %llu",
          static_cast<std::size_t>(frame_bytes),
          static_cast<unsigned long long>(offset)));
    }
  }

  out->resize(count);
  return internal::DecodeVoxelSpan(encoded_.data(), count, header_, swapped_,
                                   out->data());
}

// ---------------------------------------------------------------------------
// ReadNiftiStreamed

Result<NiftiImage> ReadNiftiStreamed(const std::string& path) {
  auto reader = NiftiStreamReader::Open(path);
  if (!reader.ok()) return reader.status();

  NiftiImage image;
  image.header = reader->header();
  image.data = image::Volume4D(reader->nx(), reader->ny(), reader->nz(),
                               reader->nt());
  std::vector<float> frame;
  for (std::size_t t = 0; t < reader->nt(); ++t) {
    NP_RETURN_IF_ERROR(reader->ReadFrame(t, &frame));
    std::copy(frame.begin(), frame.end(), image.data.VolumePtr(t));
  }
  if (fault::Enabled()) {
    // Same injection surface as ReadNifti's voxel buffer, applied to the
    // assembled volume so schedules behave identically on both readers.
    const fault::Injection injection = fault::Hit("nifti.decode_voxels");
    if (injection.action == fault::Action::kError) return injection.status;
    if (injection.action == fault::Action::kCorrupt) {
      fault::ScrambleBytes(injection.seed, image.data.data(),
                           image.data.size() * sizeof(float));
    } else if (injection.action == fault::Action::kNaN) {
      std::fill(image.data.data(), image.data.data() + image.data.size(),
                std::numeric_limits<float>::quiet_NaN());
    }
  }
  image.data.spacing() = reader->spacing();
  return image;
}

}  // namespace neuroprint::nifti
