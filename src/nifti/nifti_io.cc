#include "nifti/nifti_io.h"

#include <zlib.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "nifti/nifti_stream.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace neuroprint::nifti {
namespace {

// Applies a fired buffer-capable injection point to decoded bytes or
// voxels: kError propagates, kCorrupt scrambles in place, kNaN (floats
// only) poisons every value.
Status ApplyBufferInjection(const fault::Injection& injection,
                            std::vector<std::uint8_t>& bytes) {
  switch (injection.action) {
    case fault::Action::kNone:
      return Status::OK();
    case fault::Action::kError:
      return injection.status;
    case fault::Action::kCorrupt:
      fault::ScrambleBytes(injection.seed, bytes.data(), bytes.size());
      return Status::OK();
    case fault::Action::kNaN:
      return Status::Internal(
          "fault action 'nan' is not supported on raw byte buffers");
    case fault::Action::kTorn:
    case fault::Action::kCrash:
      return Status::Internal(
          std::string("fault action '") + fault::ActionName(injection.action) +
          "' targets the durable writers, not read paths");
  }
  return Status::OK();
}

Status ApplyVoxelInjection(const fault::Injection& injection,
                           std::vector<float>& voxels) {
  switch (injection.action) {
    case fault::Action::kNone:
      return Status::OK();
    case fault::Action::kError:
      return injection.status;
    case fault::Action::kCorrupt:
      fault::ScrambleBytes(injection.seed, voxels.data(),
                           voxels.size() * sizeof(float));
      return Status::OK();
    case fault::Action::kNaN:
      std::fill(voxels.begin(), voxels.end(),
                std::numeric_limits<float>::quiet_NaN());
      return Status::OK();
    case fault::Action::kTorn:
    case fault::Action::kCrash:
      return Status::Internal(
          std::string("fault action '") + fault::ActionName(injection.action) +
          "' targets the durable writers, not read paths");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Raw / gzip file slurping

Result<std::vector<std::uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IOError("cannot open: " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("read failed: " + path);
  }
  return bytes;
}

bool LooksGzipped(const std::vector<std::uint8_t>& bytes) {
  return bytes.size() >= 2 && bytes[0] == 0x1f && bytes[1] == 0x8b;
}

Result<std::vector<std::uint8_t>> GunzipFile(const std::string& path) {
  // Streamed inflation (nifti_stream.h): bounded 64 KiB input window, and
  // truncation / corruption surface with exact bytes-consumed accounting
  // instead of gzread's opaque failure.
  auto reader = GzipStreamReader::Open(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> chunk(1 << 20);
  while (true) {
    auto n = reader->Read(chunk.data(), chunk.size());
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    out.insert(out.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(*n));
  }
  if (fault::Enabled()) {
    NP_RETURN_IF_ERROR(
        ApplyBufferInjection(fault::Hit("io.gzip_inflate"), out));
  }
  return out;
}

Status WriteBytes(const std::string& path, const std::vector<std::uint8_t>& bytes,
                  bool gzip) {
  if (gzip) {
    gzFile gz = gzopen(path.c_str(), "wb6");
    if (gz == nullptr) return Status::IOError("cannot open for write: " + path);
    std::size_t written = 0;
    while (written < bytes.size()) {
      const unsigned chunk = static_cast<unsigned>(
          std::min<std::size_t>(bytes.size() - written, 1u << 20));
      if (gzwrite(gz, bytes.data() + written, chunk) !=
          static_cast<int>(chunk)) {
        gzclose(gz);
        return Status::IOError("gzip write failed: " + path);
      }
      written += chunk;
    }
    if (gzclose(gz) != Z_OK) return Status::IOError("gzip close failed: " + path);
    return Status::OK();
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for write: " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Voxel decoding

template <typename T>
double DecodeValue(const std::uint8_t* src, bool swap) {
  std::uint8_t buf[sizeof(T)];
  if (!swap) {
    std::memcpy(buf, src, sizeof(T));
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i) buf[i] = src[sizeof(T) - 1 - i];
  }
  T value;
  std::memcpy(&value, buf, sizeof(T));
  return static_cast<double>(value);
}

Status DecodeVoxels(const std::vector<std::uint8_t>& bytes,
                    std::size_t offset, const NiftiHeader& header, bool swap,
                    std::vector<float>& out) {
  const Result<std::size_t> count_result = header.VoxelCount();
  if (!count_result.ok()) return count_result.status();
  const std::size_t count = *count_result;
  const Result<int> bits = BitsPerVoxel(header.datatype);
  if (!bits.ok()) return bits.status();
  const std::size_t voxel_bytes = static_cast<std::size_t>(*bits) / 8;
  if (offset + count * voxel_bytes > bytes.size()) {
    return Status::CorruptData(StrFormat(
        "NIfTI voxel data truncated: need %zu bytes at offset %zu, have %zu",
        count * voxel_bytes, offset, bytes.size()));
  }
  out.resize(count);
  return internal::DecodeVoxelSpan(bytes.data() + offset, count, header, swap,
                                   out.data());
}

// ---------------------------------------------------------------------------
// Voxel encoding

template <typename T>
void EncodeValue(double v, std::uint8_t* dst) {
  T value;
  if constexpr (std::is_integral_v<T>) {
    const double lo = static_cast<double>(std::numeric_limits<T>::min());
    const double hi = static_cast<double>(std::numeric_limits<T>::max());
    value = static_cast<T>(std::llround(std::clamp(v, lo, hi)));
  } else {
    value = static_cast<T>(v);
  }
  std::memcpy(dst, &value, sizeof(T));
}

// Chooses slope/inter so the data range maps onto the integer range.
void IntegerScaling(const std::vector<float>& data, double type_min,
                    double type_max, float& slope, float& inter) {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (float v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (data.empty() || hi <= lo) {
    slope = 1.0f;
    inter = data.empty() ? 0.0f : lo;
    return;
  }
  slope = static_cast<float>((static_cast<double>(hi) - static_cast<double>(lo)) /
                             (type_max - type_min));
  inter = static_cast<float>(static_cast<double>(lo) -
                             static_cast<double>(slope) * type_min);
}

}  // namespace

namespace internal {

Status DecodeVoxelSpan(const std::uint8_t* src, std::size_t count,
                       const NiftiHeader& header, bool swap, float* out) {
  const Result<int> bits = BitsPerVoxel(header.datatype);
  if (!bits.ok()) return bits.status();
  const std::size_t voxel_bytes = static_cast<std::size_t>(*bits) / 8;
  // scl_slope == 0 means "no scaling" per the NIfTI spec.
  const double slope =
      header.scl_slope != 0.0f ? static_cast<double>(header.scl_slope) : 1.0;
  const double inter =
      header.scl_slope != 0.0f ? static_cast<double>(header.scl_inter) : 0.0;

  for (std::size_t i = 0; i < count; ++i, src += voxel_bytes) {
    double raw = 0.0;
    switch (header.datatype) {
      case DataType::kUint8:
        raw = static_cast<double>(*src);
        break;
      case DataType::kInt16:
        raw = DecodeValue<std::int16_t>(src, swap);
        break;
      case DataType::kInt32:
        raw = DecodeValue<std::int32_t>(src, swap);
        break;
      case DataType::kFloat32:
        raw = DecodeValue<float>(src, swap);
        break;
      case DataType::kFloat64:
        raw = DecodeValue<double>(src, swap);
        break;
    }
    out[i] = static_cast<float>(slope * raw + inter);
  }
  return Status::OK();
}

}  // namespace internal

Result<NiftiImage> ReadNifti(const std::string& path) {
  NP_FAULT_POINT("nifti.read");
  Result<std::vector<std::uint8_t>> raw = ReadWholeFile(path);
  if (!raw.ok()) return raw.status();
  std::vector<std::uint8_t> bytes = std::move(raw).value();
  if (LooksGzipped(bytes)) {
    Result<std::vector<std::uint8_t>> inflated = GunzipFile(path);
    if (!inflated.ok()) return inflated.status();
    bytes = std::move(inflated).value();
  }

  bool swapped = false;
  Result<NiftiHeader> header_result = DecodeHeader(bytes, &swapped);
  if (!header_result.ok()) return header_result.status();
  const NiftiHeader& header = *header_result;

  std::vector<float> voxels;
  NP_RETURN_IF_ERROR(DecodeVoxels(
      bytes, static_cast<std::size_t>(header.vox_offset), header, swapped,
      voxels));
  if (fault::Enabled()) {
    NP_RETURN_IF_ERROR(
        ApplyVoxelInjection(fault::Hit("nifti.decode_voxels"), voxels));
  }

  const std::size_t nx = static_cast<std::size_t>(header.dim[1]);
  const std::size_t ny = header.dim[0] >= 2 ? static_cast<std::size_t>(header.dim[2]) : 1;
  const std::size_t nz = header.dim[0] >= 3 ? static_cast<std::size_t>(header.dim[3]) : 1;
  const std::size_t nt = header.dim[0] >= 4 ? static_cast<std::size_t>(header.dim[4]) : 1;

  NiftiImage image;
  image.header = header;
  image.data = image::Volume4D(nx, ny, nz, nt);
  NP_CHECK_EQ(image.data.size(), voxels.size());
  std::copy(voxels.begin(), voxels.end(), image.data.data());
  image.data.spacing().dx_mm = header.pixdim[1];
  image.data.spacing().dy_mm = header.pixdim[2];
  image.data.spacing().dz_mm = header.pixdim[3];
  image.data.spacing().tr_seconds = header.pixdim[4];
  return image;
}

Status WriteNifti(const std::string& path, const image::Volume4D& volume,
                  const WriteOptions& options) {
  if (volume.empty()) {
    return Status::InvalidArgument("WriteNifti: empty volume");
  }
  const Result<int> bits = BitsPerVoxel(options.datatype);
  if (!bits.ok()) return bits.status();

  NiftiHeader header;
  const bool four_d = volume.nt() > 1;
  header.dim = {static_cast<std::int16_t>(four_d ? 4 : 3),
                static_cast<std::int16_t>(volume.nx()),
                static_cast<std::int16_t>(volume.ny()),
                static_cast<std::int16_t>(volume.nz()),
                static_cast<std::int16_t>(volume.nt()),
                1, 1, 1};
  header.datatype = options.datatype;
  header.pixdim = {1.0f,
                   static_cast<float>(volume.spacing().dx_mm),
                   static_cast<float>(volume.spacing().dy_mm),
                   static_cast<float>(volume.spacing().dz_mm),
                   static_cast<float>(volume.spacing().tr_seconds),
                   1.0f, 1.0f, 1.0f};
  header.description = options.description;

  float slope = 1.0f, inter = 0.0f;
  if (options.integer_autoscale) {
    switch (options.datatype) {
      case DataType::kUint8:
        IntegerScaling(volume.flat(), 0.0, 255.0, slope, inter);
        break;
      case DataType::kInt16:
        IntegerScaling(volume.flat(), -32768.0, 32767.0, slope, inter);
        break;
      case DataType::kInt32:
        IntegerScaling(volume.flat(), -2147483648.0, 2147483647.0, slope, inter);
        break;
      case DataType::kFloat32:
      case DataType::kFloat64:
        break;
    }
  }
  header.scl_slope = slope;
  header.scl_inter = inter;

  const std::size_t voxel_bytes = static_cast<std::size_t>(*bits) / 8;
  std::vector<std::uint8_t> bytes = EncodeHeader(header);
  bytes.resize(352, 0);  // 4 bytes of extension flags (all zero).
  const std::size_t data_start = bytes.size();
  bytes.resize(data_start + volume.size() * voxel_bytes);

  const double inv_slope =
      slope != 0.0f ? 1.0 / static_cast<double>(slope) : 1.0;
  std::uint8_t* dst = bytes.data() + data_start;
  for (std::size_t i = 0; i < volume.size(); ++i, dst += voxel_bytes) {
    const double stored =
        (static_cast<double>(volume.flat()[i]) - static_cast<double>(inter)) *
        inv_slope;
    switch (options.datatype) {
      case DataType::kUint8:
        EncodeValue<std::uint8_t>(stored, dst);
        break;
      case DataType::kInt16:
        EncodeValue<std::int16_t>(stored, dst);
        break;
      case DataType::kInt32:
        EncodeValue<std::int32_t>(stored, dst);
        break;
      case DataType::kFloat32:
        EncodeValue<float>(stored, dst);
        break;
      case DataType::kFloat64:
        EncodeValue<double>(stored, dst);
        break;
    }
  }

  bool gzip = false;
  switch (options.compression) {
    case WriteOptions::Compression::kAuto:
      gzip = EndsWith(path, ".gz");
      break;
    case WriteOptions::Compression::kNever:
      gzip = false;
      break;
    case WriteOptions::Compression::kAlways:
      gzip = true;
      break;
  }
  return WriteBytes(path, bytes, gzip);
}

Status WriteNifti3D(const std::string& path, const image::Volume3D& volume,
                    const WriteOptions& options) {
  image::Volume4D run(volume.nx(), volume.ny(), volume.nz(), 1);
  std::copy(volume.data(), volume.data() + volume.size(), run.data());
  run.spacing() = volume.spacing();
  return WriteNifti(path, run, options);
}

}  // namespace neuroprint::nifti
