// Reading and writing NIfTI-1 images (.nii and .nii.gz).
//
// Voxel values are converted to float on read, applying the scl_slope /
// scl_inter scaling; integer outputs are auto-scaled on write so the full
// intensity range survives quantization.

#ifndef NEUROPRINT_NIFTI_NIFTI_IO_H_
#define NEUROPRINT_NIFTI_NIFTI_IO_H_

#include <string>

#include "image/volume.h"
#include "nifti/nifti_header.h"
#include "util/status.h"

namespace neuroprint::nifti {

/// A decoded NIfTI file: the header plus the voxel data as a 4-D volume
/// (3-D images get nt() == 1).
struct NiftiImage {
  NiftiHeader header;
  image::Volume4D data;
};

/// Reads a .nii or .nii.gz file (gzip detected by magic bytes, not the
/// extension). Returns CorruptData / Unimplemented / IOError on failure.
Result<NiftiImage> ReadNifti(const std::string& path);

struct WriteOptions {
  DataType datatype = DataType::kFloat32;
  /// Compress with gzip. Default: inferred from a ".gz" path suffix.
  enum class Compression { kAuto, kNever, kAlways };
  Compression compression = Compression::kAuto;
  /// For integer datatypes: map the intensity range onto the type range
  /// via scl_slope/scl_inter (lossy but range-preserving). Disable when
  /// the voxel values are already exact integers (label images) so they
  /// round-trip bit-exactly with slope 1.
  bool integer_autoscale = true;
  std::string description = "neuroprint";
};

/// Writes `volume` as a single-file NIfTI-1 image. Voxel spacing and TR
/// are taken from volume.spacing().
Status WriteNifti(const std::string& path, const image::Volume4D& volume,
                  const WriteOptions& options = {});

/// Convenience overload for a single 3-D volume.
Status WriteNifti3D(const std::string& path, const image::Volume3D& volume,
                    const WriteOptions& options = {});

namespace internal {

/// Decodes `count` voxels encoded per `header.datatype` (byte-swapped when
/// `swap`) from `src`, applying scl_slope / scl_inter, into out[0..count).
/// Shared by the whole-file and streamed readers so both produce
/// bit-identical floats. The caller guarantees `src` holds enough bytes.
Status DecodeVoxelSpan(const std::uint8_t* src, std::size_t count,
                       const NiftiHeader& header, bool swap, float* out);

}  // namespace internal

}  // namespace neuroprint::nifti

#endif  // NEUROPRINT_NIFTI_NIFTI_IO_H_
