// Streamed NIfTI access: chunked gzip inflation with bytes-consumed
// accounting and a frame-at-a-time volume reader, so a 4-D run never has
// to materialize compressed bytes, plaintext, and voxels side by side.
//
// GzipStreamReader is the robustness workhorse: it inflates through a
// fixed 64 KiB input window and reports truncation with exact counts —
// a clean Z_STREAM_END is end-of-data, anything short of it is
// CorruptData naming how many compressed bytes were consumed and how
// many plaintext bytes came out. GunzipFile and the whole-file NIfTI
// reader sit on top of it, so every gzip path in the library shares one
// truncation story.
//
// NiftiStreamReader decodes one frame (3-D sub-volume) at a time:
// uncompressed files seek directly, gzipped files inflate forward and
// transparently reopen to seek backwards. Frames decode bit-identically
// to the corresponding span of ReadNifti's voxels.

#ifndef NEUROPRINT_NIFTI_NIFTI_STREAM_H_
#define NEUROPRINT_NIFTI_NIFTI_STREAM_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "image/volume.h"
#include "nifti/nifti_header.h"
#include "nifti/nifti_io.h"
#include "util/status.h"

// Forward declaration so this header does not leak <zlib.h>.
struct z_stream_s;

namespace neuroprint::nifti {

/// Chunked gzip decoder over a file. Move-only; the inflate state lives
/// on the heap so moves never relocate it under zlib's feet.
class GzipStreamReader {
 public:
  static Result<GzipStreamReader> Open(const std::string& path);

  GzipStreamReader(GzipStreamReader&&) noexcept;
  GzipStreamReader& operator=(GzipStreamReader&&) noexcept;
  GzipStreamReader(const GzipStreamReader&) = delete;
  GzipStreamReader& operator=(const GzipStreamReader&) = delete;
  ~GzipStreamReader();

  /// Inflates up to `count` plaintext bytes into `out`. Returns the number
  /// produced; 0 means the stream ended cleanly (Z_STREAM_END, every
  /// member finished). A file that ends mid-member is CorruptData naming
  /// the compressed bytes consumed and plaintext bytes decoded; damaged
  /// streams are CorruptData with the same accounting. Concatenated gzip
  /// members decode seamlessly; trailing non-gzip garbage after a clean
  /// member end is ignored (matching zlib's gzread).
  Result<std::size_t> Read(std::uint8_t* out, std::size_t count);

  /// Compressed bytes fed to inflate so far.
  std::uint64_t compressed_consumed() const { return compressed_consumed_; }
  /// Plaintext bytes produced so far.
  std::uint64_t decoded_bytes() const { return decoded_bytes_; }
  /// True once the stream ended cleanly.
  bool finished() const { return finished_; }

 private:
  GzipStreamReader() = default;

  /// Tops up the input window (compacting leftovers) until it holds at
  /// least `want` bytes or the file is exhausted. IOError on read failure.
  Status FillInput(std::size_t want);

  std::string path_;
  std::ifstream file_;
  std::unique_ptr<z_stream_s> strm_;
  std::vector<std::uint8_t> input_;
  std::size_t input_pos_ = 0;
  std::size_t input_len_ = 0;
  bool file_exhausted_ = false;
  bool finished_ = false;
  std::uint64_t compressed_consumed_ = 0;
  std::uint64_t decoded_bytes_ = 0;
};

/// Frame-at-a-time NIfTI reader: Open parses and validates the header
/// (and only the header), ReadFrame decodes one 3-D frame's voxels with
/// the same scl scaling as ReadNifti. One frame of floats plus one input
/// chunk is the whole resident set.
class NiftiStreamReader {
 public:
  /// Opens `path` (.nii or .nii.gz, detected by magic bytes) and decodes
  /// the header. CorruptData / Unimplemented / IOError as ReadNifti.
  static Result<NiftiStreamReader> Open(const std::string& path);

  NiftiStreamReader(NiftiStreamReader&&) = default;
  NiftiStreamReader& operator=(NiftiStreamReader&&) = default;

  const NiftiHeader& header() const { return header_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t nt() const { return nt_; }
  /// Voxels per frame (nx * ny * nz).
  std::size_t frame_voxels() const { return nx_ * ny_ * nz_; }
  image::VoxelSpacing spacing() const;

  /// Decodes frame `t` into `out` (resized to frame_voxels()). Frames may
  /// be read in any order; on a gzipped file a backwards seek reopens and
  /// re-inflates from the start. Truncation surfaces as CorruptData with
  /// the GzipStreamReader byte accounting (gzip) or the ReadNifti
  /// need/have message (raw).
  Status ReadFrame(std::size_t t, std::vector<float>* out);

 private:
  NiftiStreamReader() = default;

  /// Advances the gzip plaintext cursor to `offset` (absolute), reopening
  /// when the cursor is already past it.
  Status GzipSeekTo(std::uint64_t offset);

  std::string path_;
  NiftiHeader header_;
  bool swapped_ = false;
  bool gzipped_ = false;
  std::size_t nx_ = 1, ny_ = 1, nz_ = 1, nt_ = 1;
  std::size_t voxel_bytes_ = 0;
  std::uint64_t data_offset_ = 0;

  /// Raw backend.
  std::ifstream raw_;
  /// Gzip backend: forward-only cursor over the plaintext.
  std::unique_ptr<GzipStreamReader> gzip_;
  std::uint64_t gzip_plain_pos_ = 0;

  /// Per-frame encoded scratch, kept across calls to avoid churn.
  std::vector<std::uint8_t> encoded_;
};

/// Whole-image convenience on the streamed path: bit-identical NiftiImage
/// to ReadNifti, but the compressed bytes and plaintext are never both
/// resident (frames decode one at a time into the final volume).
Result<NiftiImage> ReadNiftiStreamed(const std::string& path);

}  // namespace neuroprint::nifti

#endif  // NEUROPRINT_NIFTI_NIFTI_STREAM_H_
