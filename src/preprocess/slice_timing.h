// Slice-time correction: each axial slice of an fMRI volume is acquired at
// a different moment within the TR; this stage resamples every voxel's
// series onto the acquisition time of a reference slice.

#ifndef NEUROPRINT_PREPROCESS_SLICE_TIMING_H_
#define NEUROPRINT_PREPROCESS_SLICE_TIMING_H_

#include <vector>

#include "image/volume.h"
#include "signal/resample.h"
#include "util/status.h"

namespace neuroprint::preprocess {

/// Slice acquisition orders supported by the corrector.
enum class SliceOrder {
  kSequentialAscending,   ///< 0, 1, 2, ...
  kSequentialDescending,  ///< nz-1, nz-2, ...
  kInterleavedOdd,        ///< 0, 2, 4, ..., 1, 3, 5, ...
};

/// Fraction of the TR (in [0, 1)) at which each slice is acquired.
std::vector<double> SliceAcquisitionFractions(std::size_t nz, SliceOrder order);

/// Shifts every voxel's time series so all slices align to the acquisition
/// time of slice `reference_slice`.
Result<image::Volume4D> SliceTimeCorrect(
    const image::Volume4D& run, SliceOrder order,
    std::size_t reference_slice = 0,
    signal::InterpKind interp = signal::InterpKind::kWindowedSinc);

}  // namespace neuroprint::preprocess

#endif  // NEUROPRINT_PREPROCESS_SLICE_TIMING_H_
