// The fMRI preprocessing pipeline of the paper's Figure 4, as a composable
// stage sequence:
//
//   raw 4-D run
//     -> slice-time correction           (temporal resampling per slice)
//     -> head-motion correction          (rigid registration per frame)
//     -> brain masking                   (skull-strip analogue)
//     -> spatial smoothing               (Gaussian, FWHM in mm)
//     -> intensity normalization         (grand-mean scaling to 1000)
//     -> region averaging by atlas       (voxel x time -> region x time)
//     -> temporal cleanup on region series:
//          detrending, band-pass / high-pass, global-signal regression
//     -> z-score normalization
//
// Detrending, filtering, and regression are linear maps applied uniformly
// to every series, so they commute with region averaging; applying them
// after the atlas step is exact and orders of magnitude cheaper than
// filtering every voxel.

#ifndef NEUROPRINT_PREPROCESS_PIPELINE_H_
#define NEUROPRINT_PREPROCESS_PIPELINE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "atlas/atlas.h"
#include "atlas/region_timeseries.h"
#include "image/mask.h"
#include "image/registration.h"
#include "image/smooth.h"
#include "image/volume.h"
#include "linalg/matrix.h"
#include "preprocess/slice_timing.h"
#include "signal/filters.h"
#include "util/batch.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/trace.h"

namespace neuroprint::preprocess {

/// Temporal filtering profile.
enum class TemporalFilter {
  kNone,
  kRestingStateBandPass,  ///< 0.008–0.1 Hz (the paper's resting-state band).
  kTaskHighPass,          ///< 1/200 Hz high-pass (the paper's task cutoff).
};

struct PipelineConfig {
  bool slice_time_correction = true;
  SliceOrder slice_order = SliceOrder::kInterleavedOdd;

  bool motion_correction = true;
  image::RegistrationOptions registration;

  double mask_fraction = 0.25;

  double smoothing_fwhm_mm = 4.0;  ///< 0 disables smoothing.

  bool intensity_normalization = true;
  double grand_mean_target = 1000.0;

  int detrend_degree = 1;  ///< < 0 disables detrending.

  TemporalFilter temporal_filter = TemporalFilter::kRestingStateBandPass;

  bool global_signal_regression = true;

  bool zscore_series = true;

  /// Threads for the per-voxel and per-region stages. Never changes
  /// results (see util/thread_pool.h), only wall-clock time.
  ParallelContext parallel;

  /// Observability: `trace.enabled = true` collects per-stage spans and
  /// metrics for this run even when NEUROPRINT_TRACE is unset (see
  /// util/trace.h).
  trace::TraceConfig trace;

  /// Batch semantics for RunPipelineBatch: fail-fast (default, the
  /// pre-existing behavior), skip-and-report, or quorum. A non-fail-fast
  /// policy also arms the stage-level degradations (identity-transform
  /// fallback for unregistrable frames).
  FailurePolicy failure_policy;

  /// Fault injection for this call: a non-empty schedule replaces the
  /// process schedule (NEUROPRINT_FAULT) for the run (see util/fault.h).
  fault::FaultConfig fault;

  /// Bounded-memory knob for the streaming RunPipelineBatch overload: at
  /// most this many raw runs are resident at once (0 = the whole batch).
  /// Completed region series spill to disk (util/spill.h) until the batch
  /// resolves. Never changes results or report contents, only peak RSS.
  std::size_t max_in_flight = 0;
};

/// Preset matching the paper's resting-state processing.
PipelineConfig RestingStateConfig();

/// Preset matching the paper's task processing (high-pass, no GSR).
PipelineConfig TaskConfig();

/// Everything the pipeline produces besides the series: provenance that
/// downstream QC and the benches report.
struct PipelineOutput {
  linalg::Matrix region_series;  ///< regions x time, cleaned (+ z-scored).
  image::Mask mask;
  std::vector<image::RigidTransform> motion;  ///< Empty if correction off.
  std::vector<std::pair<std::string, double>> stage_seconds;  ///< Timing log.
  /// Frames kept under the identity-transform registration fallback
  /// (non-empty only when the failure policy armed degradations).
  std::vector<std::size_t> degraded_frames;
};

/// Runs the full pipeline. The atlas grid must match the run grid.
Result<PipelineOutput> RunPipeline(const image::Volume4D& raw,
                                   const atlas::Atlas& atlas,
                                   const PipelineConfig& config);

/// Survivors of a multi-run batch: outputs[k] is the pipeline output of
/// runs[indices[k]]; the report names every dropped or degraded run.
struct PipelineBatchOutput {
  std::vector<PipelineOutput> outputs;
  std::vector<std::size_t> indices;
  BatchReport report;
};

/// Runs the pipeline over a batch of runs under config.failure_policy:
/// fail-fast returns the lowest-index failure; skip-and-report / quorum
/// drop failed runs into the report and keep going (see util/batch.h).
/// `ids` labels the report entries and may be empty.
Result<PipelineBatchOutput> RunPipelineBatch(
    const std::vector<image::Volume4D>& runs,
    const std::vector<std::string>& ids, const atlas::Atlas& atlas,
    const PipelineConfig& config);

/// Produces run `i` on demand — e.g. decode one NIfTI at a time via
/// nifti::NiftiStreamReader — so a cohort never has to materialize as a
/// vector of volumes. A returned error fails that run (stage "load")
/// under the batch failure policy, like any pipeline failure.
using RunSource = std::function<Result<image::Volume4D>(std::size_t)>;

/// Bounded-memory batch: identical outputs, report entries, and failure
/// semantics to the vector overload over the same runs, but raw volumes
/// are pulled from `source` in windows of config.max_in_flight and each
/// window's region series spill to disk until the batch resolves. Peak
/// RSS is O(max_in_flight) raw runs instead of O(num_runs); every run is
/// attempted before the policy resolves, exactly like the vector
/// overload. The `io.spill` fault point fires on the spill columns.
Result<PipelineBatchOutput> RunPipelineBatch(
    const RunSource& source, std::size_t num_runs,
    const std::vector<std::string>& ids, const atlas::Atlas& atlas,
    const PipelineConfig& config);

/// The temporal-cleanup tail of the pipeline on an existing region x time
/// matrix (used by the simulator's region-level fast path so both paths
/// share one implementation). `global_signal` may be empty to derive it
/// from the series themselves (mean across regions).
Status CleanRegionSeries(linalg::Matrix& series, const PipelineConfig& config,
                         double tr_seconds,
                         const std::vector<double>& global_signal = {});

}  // namespace neuroprint::preprocess

#endif  // NEUROPRINT_PREPROCESS_PIPELINE_H_
