// Motion quality-control metrics: framewise displacement (Power et al.'s
// summary of how much the head moved between consecutive frames) and
// frame censoring ("scrubbing"). High-motion frames corrupt correlation
// estimates — ADHD-200's paediatric cohort is the paper's motivating
// example of a motion-heavy population — so pipelines flag and drop them
// before computing connectomes.

#ifndef NEUROPRINT_PREPROCESS_MOTION_METRICS_H_
#define NEUROPRINT_PREPROCESS_MOTION_METRICS_H_

#include <vector>

#include "image/affine.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::preprocess {

/// Framewise displacement per frame: the sum of absolute differences of
/// the six rigid parameters between consecutive frames, with rotations
/// converted to arc length on a sphere of `head_radius_mm` (Power et al.
/// 2012 use 50 mm). Entry 0 is 0 by convention. Translations are taken
/// in the same unit they were estimated in (multiply by the voxel size
/// first if they are in voxels).
Result<std::vector<double>> FramewiseDisplacement(
    const std::vector<image::RigidTransform>& motion,
    double head_radius_mm = 50.0);

/// Frames whose framewise displacement exceeds `threshold`, plus
/// `extend_after` frames following each exceedance (motion artifacts
/// linger through the haemodynamic response).
Result<std::vector<bool>> CensorMask(const std::vector<double>& displacement,
                                     double threshold,
                                     std::size_t extend_after = 0);

/// Removes the censored columns (frames) from a regions x time series
/// matrix. Fails if fewer than 3 frames survive (no correlation can be
/// estimated). Returns the retained series.
Result<linalg::Matrix> DropCensoredFrames(const linalg::Matrix& series,
                                          const std::vector<bool>& censored);

}  // namespace neuroprint::preprocess

#endif  // NEUROPRINT_PREPROCESS_MOTION_METRICS_H_
