#include "preprocess/pipeline.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "linalg/stats.h"
#include "util/metrics.h"
#include "util/spill.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace neuroprint::preprocess {
namespace {

// Per-frame sum and brain-voxel count; the building block for both the
// grand mean and the global signal, parallel over frames.
struct FrameSum {
  double sum = 0.0;
  std::size_t count = 0;
};

FrameSum SumFrame(const image::Volume4D& run, const image::Mask& mask,
                  std::size_t t) {
  const float* vol = run.VolumePtr(t);
  FrameSum fs;
  std::size_t i = 0;
  for (std::size_t z = 0; z < run.nz(); ++z) {
    for (std::size_t y = 0; y < run.ny(); ++y) {
      for (std::size_t x = 0; x < run.nx(); ++x, ++i) {
        if (mask.at(x, y, z)) {
          fs.sum += static_cast<double>(vol[i]);
          ++fs.count;
        }
      }
    }
  }
  return fs;
}

// Mean intensity across brain voxels over the whole run. Per-frame sums
// combine in frame order, so the result is thread-count-invariant.
double GrandMean(const image::Volume4D& run, const image::Mask& mask,
                 const ParallelContext& ctx) {
  const FrameSum total = ParallelReduce(
      ctx, 0, run.nt(), 1, FrameSum{},
      [&](std::size_t t_lo, std::size_t t_hi) {
        FrameSum fs;
        for (std::size_t t = t_lo; t < t_hi; ++t) {
          const FrameSum frame = SumFrame(run, mask, t);
          fs.sum += frame.sum;
          fs.count += frame.count;
        }
        return fs;
      },
      [](FrameSum acc, FrameSum part) {
        acc.sum += part.sum;
        acc.count += part.count;
        return acc;
      });
  return total.count > 0 ? total.sum / static_cast<double>(total.count) : 0.0;
}

// Mean brain-voxel intensity per frame: the global signal. Frames are
// independent, so the parallel loop is bitwise-identical to the serial one.
std::vector<double> GlobalSignal(const image::Volume4D& run,
                                 const image::Mask& mask,
                                 const ParallelContext& ctx) {
  std::vector<double> global(run.nt(), 0.0);
  ParallelFor(ctx, 0, run.nt(), 1, [&](std::size_t t_lo, std::size_t t_hi) {
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      const FrameSum fs = SumFrame(run, mask, t);
      global[t] = fs.count > 0 ? fs.sum / static_cast<double>(fs.count) : 0.0;
    }
  });
  return global;
}

}  // namespace

PipelineConfig RestingStateConfig() {
  PipelineConfig config;
  config.temporal_filter = TemporalFilter::kRestingStateBandPass;
  config.global_signal_regression = true;
  return config;
}

PipelineConfig TaskConfig() {
  PipelineConfig config;
  config.temporal_filter = TemporalFilter::kTaskHighPass;
  config.global_signal_regression = false;
  return config;
}

Status CleanRegionSeries(linalg::Matrix& series, const PipelineConfig& config,
                         double tr_seconds,
                         const std::vector<double>& global_signal) {
  const std::size_t regions = series.rows();
  const std::size_t nt = series.cols();
  if (regions == 0 || nt == 0) {
    return Status::InvalidArgument("CleanRegionSeries: empty series matrix");
  }

  // Each temporal-cleanup stage treats regions independently, so the loops
  // parallelize per region with bitwise-identical results.

  // Detrend.
  if (config.detrend_degree >= 0 &&
      static_cast<std::size_t>(config.detrend_degree) < nt) {
    NP_TRACE_SCOPE("pipeline.cleanup.detrend");
    NP_RETURN_IF_ERROR(ParallelForStatus(
        config.parallel, 0, regions, 1,
        [&](std::size_t r_lo, std::size_t r_hi) -> Status {
          for (std::size_t r = r_lo; r < r_hi; ++r) {
            auto detrended = signal::DetrendPolynomial(series.RowCopy(r),
                                                       config.detrend_degree);
            if (!detrended.ok()) return detrended.status();
            series.SetRow(r, *detrended);
          }
          return Status::OK();
        }));
  }

  // Temporal filter.
  if (config.temporal_filter != TemporalFilter::kNone) {
    signal::BandPassConfig band;
    band.tr_seconds = tr_seconds;
    if (config.temporal_filter == TemporalFilter::kRestingStateBandPass) {
      band.low_cutoff_hz = 0.008;
      band.high_cutoff_hz = 0.1;
    } else {
      band.low_cutoff_hz = 1.0 / 200.0;
      band.high_cutoff_hz = 0.0;
      band.transition_width_hz = 0.25 / 200.0;
    }
    // Skip filtering when the scan is too short/coarse to resolve the band
    // (the filter itself rejects cutoffs above Nyquist).
    const double nyquist = 0.5 / tr_seconds;
    if (band.high_cutoff_hz < nyquist) {
      NP_TRACE_SCOPE("pipeline.cleanup.filter");
      NP_RETURN_IF_ERROR(ParallelForStatus(
          config.parallel, 0, regions, 1,
          [&](std::size_t r_lo, std::size_t r_hi) -> Status {
            for (std::size_t r = r_lo; r < r_hi; ++r) {
              auto filtered = signal::BandPassFilter(series.RowCopy(r), band);
              if (!filtered.ok()) return filtered.status();
              series.SetRow(r, *filtered);
            }
            return Status::OK();
          }));
    }
  }

  // Global-signal regression. The regressor gets the same detrend/filter
  // treatment implicitly when derived from the cleaned series; an external
  // (voxel-derived) global signal is used as given.
  if (config.global_signal_regression) {
    NP_TRACE_SCOPE("pipeline.cleanup.gsr");
    std::vector<double> global = global_signal;
    if (global.empty()) {
      const linalg::Vector col_means = linalg::ColMeans(series);
      global.assign(col_means.begin(), col_means.end());
    }
    if (global.size() != nt) {
      return Status::InvalidArgument(
          "CleanRegionSeries: global signal length mismatch");
    }
    NP_RETURN_IF_ERROR(ParallelForStatus(
        config.parallel, 0, regions, 1,
        [&](std::size_t r_lo, std::size_t r_hi) -> Status {
          for (std::size_t r = r_lo; r < r_hi; ++r) {
            auto residual = signal::RegressOut(series.RowCopy(r), global);
            if (!residual.ok()) return residual.status();
            series.SetRow(r, *residual);
          }
          return Status::OK();
        }));
  }

  if (config.zscore_series) {
    NP_TRACE_SCOPE("pipeline.cleanup.zscore");
    linalg::ZScoreRowsInPlace(series, config.parallel);
  }
  return Status::OK();
}

Result<PipelineOutput> RunPipeline(const image::Volume4D& raw,
                                   const atlas::Atlas& atlas,
                                   const PipelineConfig& config) {
  if (raw.empty()) return Status::InvalidArgument("RunPipeline: empty run");
  if (!raw.AllFinite()) {
    return Status::InvalidArgument("RunPipeline: non-finite voxels in input");
  }
  if (raw.nx() != atlas.nx() || raw.ny() != atlas.ny() ||
      raw.nz() != atlas.nz()) {
    return Status::InvalidArgument("RunPipeline: run and atlas grids differ");
  }

  trace::ScopedEnable trace_enable(config.trace.enabled);
  fault::ScopedSchedule fault_schedule(config.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("pipeline.run");
  metrics::Count("pipeline.runs", 1);
  metrics::SetGauge("pipeline.voxels_per_frame",
                    static_cast<double>(raw.nx() * raw.ny() * raw.nz()));
  metrics::SetGauge("pipeline.frames", static_cast<double>(raw.nt()));

  PipelineOutput output;
  image::Volume4D run = raw;
  Stopwatch stage_clock;
  auto log_stage = [&](const char* name) {
    const double seconds = stage_clock.ElapsedSeconds();
    output.stage_seconds.emplace_back(name, seconds);
    if (trace::Enabled()) {
      metrics::Observe(std::string("pipeline.stage_seconds.") + name, seconds);
    }
    stage_clock.Restart();
  };

  if (config.slice_time_correction && run.nz() > 1 && run.nt() > 2) {
    NP_TRACE_SCOPE("pipeline.slice_timing");
    NP_FAULT_POINT("pipeline.slice_timing");
    auto corrected = SliceTimeCorrect(run, config.slice_order);
    if (!corrected.ok()) return corrected.status();
    run = std::move(corrected).value();
    log_stage("slice_timing");
  }

  if (config.motion_correction && run.nt() > 1) {
    NP_TRACE_SCOPE("pipeline.motion_correction");
    // A non-fail-fast policy arms the per-frame identity fallback, so a
    // single unregistrable frame degrades the scan instead of failing it.
    image::RegistrationOptions registration = config.registration;
    if (config.failure_policy.mode != FailureMode::kFailFast) {
      registration.identity_fallback_on_failure = true;
    }
    auto corrected = image::MotionCorrect(run, registration);
    if (!corrected.ok()) return corrected.status();
    run = std::move(corrected->corrected);
    output.motion = std::move(corrected->motion);
    output.degraded_frames = std::move(corrected->degraded_frames);
    log_stage("motion_correction");
  }

  {
    NP_TRACE_SCOPE("pipeline.masking");
    NP_FAULT_POINT("pipeline.masking");
    auto mask = image::ComputeBrainMask(run, config.mask_fraction);
    if (!mask.ok()) return mask.status();
    output.mask = std::move(mask).value();
    image::ApplyMask(run, output.mask);
    log_stage("masking");
  }

  if (config.smoothing_fwhm_mm > 0.0) {
    NP_TRACE_SCOPE("pipeline.smoothing");
    auto smoothed = image::GaussianSmooth4D(run, config.smoothing_fwhm_mm);
    if (!smoothed.ok()) return smoothed.status();
    run = std::move(smoothed).value();
    log_stage("smoothing");
  }

  // Global signal is taken after masking/smoothing, before scaling (the
  // regression is scale-invariant either way). Its cost is charged to the
  // intensity_normalization stage in the timing log.
  std::vector<double> global;
  {
    NP_TRACE_SCOPE("pipeline.global_signal");
    global = GlobalSignal(run, output.mask, config.parallel);
  }

  if (config.intensity_normalization) {
    NP_TRACE_SCOPE("pipeline.intensity_normalization");
    const double grand_mean = GrandMean(run, output.mask, config.parallel);
    if (grand_mean > 0.0) {
      const float scale =
          static_cast<float>(config.grand_mean_target / grand_mean);
      for (float& v : run.flat()) v *= scale;
    }
    log_stage("intensity_normalization");
  }

  {
    NP_TRACE_SCOPE("pipeline.region_averaging");
    NP_FAULT_POINT("pipeline.region_averaging");
    auto series = atlas::ExtractRegionTimeSeries(run, atlas);
    if (!series.ok()) return series.status();
    output.region_series = std::move(series).value();
    log_stage("region_averaging");
  }
  metrics::SetGauge("pipeline.regions",
                    static_cast<double>(output.region_series.rows()));

  {
    NP_TRACE_SCOPE("pipeline.temporal_cleanup");
    NP_FAULT_POINT("pipeline.temporal_cleanup");
    NP_RETURN_IF_ERROR(CleanRegionSeries(output.region_series, config,
                                         run.spacing().tr_seconds, global));
    log_stage("temporal_cleanup");
  }
  return output;
}

Result<PipelineBatchOutput> RunPipelineBatch(
    const std::vector<image::Volume4D>& runs,
    const std::vector<std::string>& ids, const atlas::Atlas& atlas,
    const PipelineConfig& config) {
  if (!ids.empty() && ids.size() != runs.size()) {
    return Status::InvalidArgument(StrFormat(
        "RunPipelineBatch: %zu ids for %zu runs", ids.size(), runs.size()));
  }
  trace::ScopedEnable trace_enable(config.trace.enabled);
  // Installed once for the whole batch; per-item configs must not nest
  // another schedule from worker threads.
  fault::ScopedSchedule fault_schedule(config.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("pipeline.batch");

  PipelineBatchOutput out;
  out.report.attempted = runs.size();
  if (runs.empty()) return out;

  PipelineConfig item_config = config;
  item_config.fault.schedule.clear();

  std::vector<PipelineOutput> results(runs.size());
  std::vector<char> succeeded(runs.size(), 0);
  std::vector<std::pair<std::size_t, Status>> errors;
  ParallelForStatusCollect(
      config.parallel, 0, runs.size(), 1,
      [&](std::size_t i) -> Status {
        NP_FAULT_POINT_KEYED("pipeline.batch_item", i);
        Result<PipelineOutput> result = RunPipeline(runs[i], atlas,
                                                    item_config);
        if (!result.ok()) return result.status();
        results[i] = std::move(result).value();
        succeeded[i] = 1;
        return Status::OK();
      },
      &errors);

  for (auto& [index, status] : errors) {
    BatchItemReport item;
    item.index = index;
    if (!ids.empty()) item.id = ids[index];
    item.stage = "pipeline";
    item.status = std::move(status);
    out.report.failed.push_back(std::move(item));
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!succeeded[i] || results[i].degraded_frames.empty()) continue;
    BatchItemReport item;
    item.index = i;
    if (!ids.empty()) item.id = ids[i];
    item.stage = "motion_correction";
    for (std::size_t frame : results[i].degraded_frames) {
      item.degradations.push_back(
          StrFormat("identity_transform_frame_%zu", frame));
    }
    out.report.degraded.push_back(std::move(item));
  }
  if (!out.report.degraded.empty()) {
    metrics::Count("batch.subjects_degraded", out.report.degraded.size());
  }
  NP_RETURN_IF_ERROR(ResolveBatch(config.failure_policy, out.report));
  if (!out.report.failed.empty()) {
    metrics::Count("batch.subjects_skipped", out.report.failed.size());
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!succeeded[i]) continue;
    out.outputs.push_back(std::move(results[i]));
    out.indices.push_back(i);
  }
  return out;
}

Result<PipelineBatchOutput> RunPipelineBatch(
    const RunSource& source, std::size_t num_runs,
    const std::vector<std::string>& ids, const atlas::Atlas& atlas,
    const PipelineConfig& config) {
  if (source == nullptr) {
    return Status::InvalidArgument("RunPipelineBatch: null run source");
  }
  if (!ids.empty() && ids.size() != num_runs) {
    return Status::InvalidArgument(StrFormat(
        "RunPipelineBatch: %zu ids for %zu runs", ids.size(), num_runs));
  }
  trace::ScopedEnable trace_enable(config.trace.enabled);
  fault::ScopedSchedule fault_schedule(config.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("pipeline.batch");

  PipelineBatchOutput out;
  out.report.attempted = num_runs;
  if (num_runs == 0) return out;

  PipelineConfig item_config = config;
  item_config.fault.schedule.clear();
  const std::size_t window = config.max_in_flight > 0
                                 ? std::min(config.max_in_flight, num_runs)
                                 : num_runs;

  // Completed region series spill to disk so only `window` raw runs plus
  // the light per-run provenance (mask, motion, timings) stay resident
  // until the batch resolves.
  auto spill = SpillFile::Create();
  if (!spill.ok()) return spill.status();

  struct PendingOutput {
    std::size_t index = 0;
    std::size_t spill_column = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
    PipelineOutput output;  // region_series empty until restore
  };
  std::vector<PendingOutput> pending;

  std::vector<image::Volume4D> window_runs(window);
  std::vector<PipelineOutput> results(window);
  std::vector<char> loaded(window, 0);
  std::vector<char> succeeded(window, 0);
  std::vector<std::pair<std::size_t, Status>> errors;

  for (std::size_t base = 0; base < num_runs; base += window) {
    const std::size_t batch = std::min(window, num_runs - base);
    std::fill(loaded.begin(), loaded.end(), 0);
    std::fill(succeeded.begin(), succeeded.end(), 0);
    std::vector<BatchItemReport> window_failed;

    // Load phase — serial: sources are usually IO-bound decoders.
    for (std::size_t k = 0; k < batch; ++k) {
      Result<image::Volume4D> run = source(base + k);
      if (!run.ok()) {
        BatchItemReport item;
        item.index = base + k;
        if (!ids.empty()) item.id = ids[base + k];
        item.stage = "load";
        item.status = run.status();
        window_failed.push_back(std::move(item));
        continue;
      }
      window_runs[k] = std::move(run).value();
      loaded[k] = 1;
    }

    ParallelForStatusCollect(
        config.parallel, 0, batch, 1,
        [&](std::size_t k) -> Status {
          if (!loaded[k]) return Status::OK();
          NP_FAULT_POINT_KEYED("pipeline.batch_item", base + k);
          Result<PipelineOutput> result =
              RunPipeline(window_runs[k], atlas, item_config);
          window_runs[k] = image::Volume4D();  // release the raw run
          if (!result.ok()) return result.status();
          results[k] = std::move(result).value();
          succeeded[k] = 1;
          return Status::OK();
        },
        &errors);

    for (auto& [k, status] : errors) {
      BatchItemReport item;
      item.index = base + k;
      if (!ids.empty()) item.id = ids[base + k];
      item.stage = "pipeline";
      item.status = std::move(status);
      window_failed.push_back(std::move(item));
    }
    // Load and pipeline failures interleave; index order keeps the report
    // identical to the vector overload's.
    std::sort(window_failed.begin(), window_failed.end(),
              [](const BatchItemReport& a, const BatchItemReport& b) {
                return a.index < b.index;
              });
    for (BatchItemReport& item : window_failed) {
      out.report.failed.push_back(std::move(item));
    }

    for (std::size_t k = 0; k < batch; ++k) {
      if (!succeeded[k] || results[k].degraded_frames.empty()) continue;
      BatchItemReport item;
      item.index = base + k;
      if (!ids.empty()) item.id = ids[base + k];
      item.stage = "motion_correction";
      for (std::size_t frame : results[k].degraded_frames) {
        item.degradations.push_back(
            StrFormat("identity_transform_frame_%zu", frame));
      }
      out.report.degraded.push_back(std::move(item));
    }

    // Spill phase — serial, ascending index, so spill columns are in
    // survivor order.
    for (std::size_t k = 0; k < batch; ++k) {
      if (!succeeded[k]) continue;
      PendingOutput p;
      p.index = base + k;
      p.spill_column = spill->num_columns();
      p.rows = results[k].region_series.rows();
      p.cols = results[k].region_series.cols();
      const std::size_t count = p.rows * p.cols;
      const double dummy = 0.0;
      const double* data =
          count > 0 ? results[k].region_series.RowPtr(0) : &dummy;
      NP_RETURN_IF_ERROR(spill->AppendColumn(data, count));
      results[k].region_series = linalg::Matrix();
      p.output = std::move(results[k]);
      results[k] = PipelineOutput();
      pending.push_back(std::move(p));
    }
  }

  if (!out.report.degraded.empty()) {
    metrics::Count("batch.subjects_degraded", out.report.degraded.size());
  }
  NP_RETURN_IF_ERROR(ResolveBatch(config.failure_policy, out.report));
  if (!out.report.failed.empty()) {
    metrics::Count("batch.subjects_skipped", out.report.failed.size());
  }

  // Restore phase: read the spilled series back in survivor order.
  std::vector<double> column;
  for (PendingOutput& p : pending) {
    NP_RETURN_IF_ERROR(spill->ReadColumn(p.spill_column, &column));
    linalg::Matrix series(p.rows, p.cols);
    if (p.rows * p.cols > 0) {
      std::copy(column.begin(), column.end(), series.RowPtr(0));
    }
    p.output.region_series = std::move(series);
    out.outputs.push_back(std::move(p.output));
    out.indices.push_back(p.index);
  }
  return out;
}

}  // namespace neuroprint::preprocess
