#include "preprocess/motion_metrics.h"

#include <cmath>

namespace neuroprint::preprocess {

Result<std::vector<double>> FramewiseDisplacement(
    const std::vector<image::RigidTransform>& motion, double head_radius_mm) {
  if (motion.empty()) {
    return Status::InvalidArgument("FramewiseDisplacement: no motion params");
  }
  if (head_radius_mm <= 0.0) {
    return Status::InvalidArgument(
        "FramewiseDisplacement: head radius must be positive");
  }
  std::vector<double> fd(motion.size(), 0.0);
  for (std::size_t t = 1; t < motion.size(); ++t) {
    const auto current = motion[t].AsArray();
    const auto previous = motion[t - 1].AsArray();
    double sum = 0.0;
    for (std::size_t p = 0; p < 6; ++p) {
      const double delta = std::fabs(current[p] - previous[p]);
      // Parameters 3..5 are rotations (radians): convert to arc length.
      sum += p < 3 ? delta : delta * head_radius_mm;
    }
    fd[t] = sum;
  }
  return fd;
}

Result<std::vector<bool>> CensorMask(const std::vector<double>& displacement,
                                     double threshold,
                                     std::size_t extend_after) {
  if (displacement.empty()) {
    return Status::InvalidArgument("CensorMask: empty displacement series");
  }
  if (threshold <= 0.0) {
    return Status::InvalidArgument("CensorMask: threshold must be positive");
  }
  std::vector<bool> censored(displacement.size(), false);
  for (std::size_t t = 0; t < displacement.size(); ++t) {
    if (displacement[t] > threshold) {
      const std::size_t end =
          std::min(displacement.size(), t + extend_after + 1);
      for (std::size_t k = t; k < end; ++k) censored[k] = true;
    }
  }
  return censored;
}

Result<linalg::Matrix> DropCensoredFrames(const linalg::Matrix& series,
                                          const std::vector<bool>& censored) {
  if (censored.size() != series.cols()) {
    return Status::InvalidArgument(
        "DropCensoredFrames: one censor flag per frame required");
  }
  std::size_t kept = 0;
  for (bool c : censored) {
    if (!c) ++kept;
  }
  if (kept < 3) {
    return Status::FailedPrecondition(
        "DropCensoredFrames: fewer than 3 frames survive censoring");
  }
  linalg::Matrix out(series.rows(), kept);
  std::size_t column = 0;
  for (std::size_t t = 0; t < series.cols(); ++t) {
    if (censored[t]) continue;
    for (std::size_t r = 0; r < series.rows(); ++r) {
      out(r, column) = series(r, t);
    }
    ++column;
  }
  return out;
}

}  // namespace neuroprint::preprocess
