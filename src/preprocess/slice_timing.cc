#include "preprocess/slice_timing.h"

namespace neuroprint::preprocess {

std::vector<double> SliceAcquisitionFractions(std::size_t nz,
                                              SliceOrder order) {
  std::vector<double> fractions(nz, 0.0);
  if (nz == 0) return fractions;
  const double step = 1.0 / static_cast<double>(nz);
  switch (order) {
    case SliceOrder::kSequentialAscending:
      for (std::size_t z = 0; z < nz; ++z) {
        fractions[z] = static_cast<double>(z) * step;
      }
      break;
    case SliceOrder::kSequentialDescending:
      for (std::size_t z = 0; z < nz; ++z) {
        fractions[z] = static_cast<double>(nz - 1 - z) * step;
      }
      break;
    case SliceOrder::kInterleavedOdd: {
      std::size_t position = 0;
      for (std::size_t z = 0; z < nz; z += 2) {
        fractions[z] = static_cast<double>(position++) * step;
      }
      for (std::size_t z = 1; z < nz; z += 2) {
        fractions[z] = static_cast<double>(position++) * step;
      }
      break;
    }
  }
  return fractions;
}

Result<image::Volume4D> SliceTimeCorrect(const image::Volume4D& run,
                                         SliceOrder order,
                                         std::size_t reference_slice,
                                         signal::InterpKind interp) {
  if (run.empty()) {
    return Status::InvalidArgument("SliceTimeCorrect: empty run");
  }
  if (reference_slice >= run.nz()) {
    return Status::InvalidArgument(
        "SliceTimeCorrect: reference slice out of range");
  }
  const std::vector<double> fractions =
      SliceAcquisitionFractions(run.nz(), order);

  image::Volume4D out = run;
  for (std::size_t z = 0; z < run.nz(); ++z) {
    // A slice acquired `delta` TRs later than the reference holds sample
    // s(t + delta) at index t; the value aligned to the reference's time
    // grid is s(t), i.e. the series evaluated at index t - delta.
    const double delta = fractions[z] - fractions[reference_slice];
    if (delta == 0.0) continue;
    for (std::size_t y = 0; y < run.ny(); ++y) {
      for (std::size_t x = 0; x < run.nx(); ++x) {
        auto shifted =
            signal::ShiftSeries(run.VoxelTimeSeries(x, y, z), -delta, interp);
        if (!shifted.ok()) return shifted.status();
        out.SetVoxelTimeSeries(x, y, z, *shifted);
      }
    }
  }
  return out;
}

}  // namespace neuroprint::preprocess
