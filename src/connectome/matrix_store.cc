#include "connectome/matrix_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "connectome/group_matrix_io.h"
#include "util/endian.h"
#include "util/fault.h"
#include "util/spill.h"
#include "util/string_util.h"

namespace neuroprint::connectome {
namespace {

// Default streamed working set when NEUROPRINT_MEMORY_BUDGET_MB is unset:
// two 32 MiB slabs comfortably below any modern cache of concern while
// keeping seek overhead negligible at the paper's 64620-row shape.
constexpr std::size_t kDefaultBudgetBytes = 64ull << 20;

Status CheckTileBounds(const MatrixStore& store, std::size_t row0,
                       std::size_t row_count, std::size_t col0,
                       std::size_t col_count) {
  if (row0 + row_count > store.num_features() ||
      col0 + col_count > store.num_subjects()) {
    return Status::InvalidArgument(StrFormat(
        "MatrixStore: tile [%zu+%zu) x [%zu+%zu) exceeds %zu x %zu", row0,
        row_count, col0, col_count, store.num_features(),
        store.num_subjects()));
  }
  return Status::OK();
}

}  // namespace

Status InMemoryMatrixStore::ReadTile(std::size_t row0, std::size_t row_count,
                                     std::size_t col0, std::size_t col_count,
                                     linalg::Matrix* out) const {
  NP_RETURN_IF_ERROR(CheckTileBounds(*this, row0, row_count, col0, col_count));
  *out = group_->data().Block(row0, col0, row_count, col_count);
  return Status::OK();
}

Result<std::unique_ptr<FileMatrixStore>> FileMatrixStore::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  internal::NpgmHeader header;
  NP_ASSIGN_OR_RETURN(header, internal::ParseNpgmHeader(in, path));
  // The header parse validated the exact payload size (including the v2
  // checksum trailer), and writers publish atomically, so tiles can seek
  // freely; the v2 value checksum is NOT verified here — that would mean
  // reading the whole payload at Open, defeating the streaming point.
  // Full-file consumers (ReadGroupMatrix) do verify it.
  auto store = std::unique_ptr<FileMatrixStore>(new FileMatrixStore());
  store->path_ = path;
  store->features_ = static_cast<std::size_t>(header.features);
  store->subjects_ = static_cast<std::size_t>(header.subjects);
  store->subject_ids_ = std::move(header.subject_ids);
  store->data_offset_ = header.data_offset;
  store->file_ = std::move(in);
  return store;
}

Status FileMatrixStore::ReadTile(std::size_t row0, std::size_t row_count,
                                 std::size_t col0, std::size_t col_count,
                                 linalg::Matrix* out) const {
  NP_RETURN_IF_ERROR(CheckTileBounds(*this, row0, row_count, col0, col_count));
  *out = linalg::Matrix(row_count, col_count);
  if (row_count == 0 || col_count == 0) return Status::OK();

  std::lock_guard<std::mutex> lock(mutex_);
  encoded_.resize(row_count * sizeof(double));
  std::vector<double> column(row_count);
  for (std::size_t c = 0; c < col_count; ++c) {
    const std::size_t j = col0 + c;
    if (fault::Enabled()) {
      const fault::Injection injection =
          fault::Hit("io.stream", static_cast<std::uint64_t>(j));
      if (injection.action == fault::Action::kError) return injection.status;
      if (injection.action != fault::Action::kNone) {
        // Corrupt / poison the column after decoding (below).
        NP_RETURN_IF_ERROR(ReadColumnBytes(j, row0, row_count));
        for (std::size_t r = 0; r < row_count; ++r) {
          column[r] = ReadLE<double>(encoded_.data() + r * sizeof(double));
        }
        if (injection.action == fault::Action::kCorrupt) {
          fault::ScrambleBytes(injection.seed, column.data(),
                               row_count * sizeof(double));
        } else {
          std::fill(column.begin(), column.end(),
                    std::numeric_limits<double>::quiet_NaN());
        }
        for (std::size_t r = 0; r < row_count; ++r) (*out)(r, c) = column[r];
        continue;
      }
    }
    NP_RETURN_IF_ERROR(ReadColumnBytes(j, row0, row_count));
    for (std::size_t r = 0; r < row_count; ++r) {
      (*out)(r, c) = ReadLE<double>(encoded_.data() + r * sizeof(double));
    }
  }
  return Status::OK();
}

Status FileMatrixStore::ReadColumnBytes(std::size_t col, std::size_t row0,
                                        std::size_t row_count) const {
  const std::uint64_t offset =
      data_offset_ +
      (static_cast<std::uint64_t>(col) * features_ + row0) * sizeof(double);
  file_.seekg(static_cast<std::streamoff>(offset));
  file_.read(reinterpret_cast<char*>(encoded_.data()),
             static_cast<std::streamsize>(row_count * sizeof(double)));
  if (!file_) {
    // The payload size was validated at Open, so a short read means the
    // file shrank underneath us: mid-tile truncation.
    file_.clear();
    return Status::CorruptData(StrFormat(
        "group-matrix tile truncated mid-read: column %zu rows [%zu, %zu) "
        "of %s",
        col, row0, row0 + row_count, path_.c_str()));
  }
  return Status::OK();
}

Result<SubsetColumnsStore> SubsetColumnsStore::Create(
    const MatrixStore& base, std::vector<std::size_t> columns) {
  SubsetColumnsStore view;
  view.base_ = &base;
  view.subject_ids_.reserve(columns.size());
  for (std::size_t j : columns) {
    if (j >= base.num_subjects()) {
      return Status::InvalidArgument(StrFormat(
          "SubsetColumnsStore: column %zu out of range (%zu subjects)", j,
          base.num_subjects()));
    }
    view.subject_ids_.push_back(base.subject_ids()[j]);
  }
  view.columns_ = std::move(columns);
  return view;
}

Status SubsetColumnsStore::ReadTile(std::size_t row0, std::size_t row_count,
                                    std::size_t col0, std::size_t col_count,
                                    linalg::Matrix* out) const {
  NP_RETURN_IF_ERROR(CheckTileBounds(*this, row0, row_count, col0, col_count));
  *out = linalg::Matrix(row_count, col_count);
  linalg::Matrix column;
  for (std::size_t c = 0; c < col_count; ++c) {
    NP_RETURN_IF_ERROR(base_->ReadTile(row0, row_count,
                                       columns_[col0 + c], 1, &column));
    for (std::size_t r = 0; r < row_count; ++r) {
      (*out)(r, c) = column(r, 0);
    }
  }
  return Status::OK();
}

std::size_t DeriveWindowCols(std::size_t features, std::size_t subjects,
                             std::size_t requested) {
  if (subjects == 0) return 1;
  if (requested > 0) return std::min(requested, subjects);
  std::size_t budget = MemoryBudgetBytes();
  if (budget == 0) budget = kDefaultBudgetBytes;
  const std::size_t column_bytes =
      std::max<std::size_t>(1, features * sizeof(double));
  // Two slabs resident (the Gram window pair), hence the halving.
  const std::size_t width = budget / (2 * column_bytes);
  return std::clamp<std::size_t>(width, 1, subjects);
}

std::size_t DeriveRowTile(std::size_t features, std::size_t subjects,
                          std::size_t requested) {
  if (features == 0) return 1;
  if (requested > 0) return std::min(requested, features);
  std::size_t budget = MemoryBudgetBytes();
  if (budget == 0) budget = kDefaultBudgetBytes;
  const std::size_t row_bytes =
      std::max<std::size_t>(1, subjects * sizeof(double));
  // Slab plus the projected tile, hence the halving.
  const std::size_t rows = budget / (2 * row_bytes);
  return std::clamp<std::size_t>(rows, 1, features);
}

Result<linalg::Matrix> StreamedGram(const MatrixStore& store,
                                    const StreamOptions& options) {
  const std::size_t m = store.num_features();
  const std::size_t n = store.num_subjects();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("StreamedGram: empty store");
  }
  const std::size_t w = DeriveWindowCols(m, n, options.window_cols);
  linalg::Matrix gram(n, n);
  linalg::Matrix slab_a, slab_b;
  for (std::size_t ca = 0; ca < n; ca += w) {
    const std::size_t wa = std::min(w, n - ca);
    NP_RETURN_IF_ERROR(store.ReadColumns(ca, wa, &slab_a));
    // Diagonal block: MatTMul over the full feature height gives each
    // element its complete canonical sum, both triangles at once.
    linalg::Matrix block = linalg::MatTMul(slab_a, slab_a, options.parallel);
    for (std::size_t p = 0; p < wa; ++p) {
      for (std::size_t q = 0; q < wa; ++q) {
        gram(ca + p, ca + q) = block(p, q);
      }
    }
    for (std::size_t cb = ca + wa; cb < n; cb += w) {
      const std::size_t wb = std::min(w, n - cb);
      NP_RETURN_IF_ERROR(store.ReadColumns(cb, wb, &slab_b));
      block = linalg::MatTMul(slab_a, slab_b, options.parallel);
      // Mirror: G is exactly symmetric because each element's canonical
      // sum is term-by-term commutative (same products, same order).
      for (std::size_t p = 0; p < wa; ++p) {
        for (std::size_t q = 0; q < wb; ++q) {
          gram(ca + p, cb + q) = block(p, q);
          gram(cb + q, ca + p) = block(p, q);
        }
      }
    }
  }
  return gram;
}

Result<GroupMatrix> MaterializeStore(const MatrixStore& store) {
  const std::size_t m = store.num_features();
  const std::size_t n = store.num_subjects();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("MaterializeStore: empty store");
  }
  const std::size_t w = DeriveWindowCols(m, n, 0);
  std::vector<linalg::Vector> columns(n);
  linalg::Matrix slab;
  for (std::size_t c0 = 0; c0 < n; c0 += w) {
    const std::size_t wc = std::min(w, n - c0);
    NP_RETURN_IF_ERROR(store.ReadColumns(c0, wc, &slab));
    for (std::size_t c = 0; c < wc; ++c) {
      columns[c0 + c].resize(m);
      for (std::size_t r = 0; r < m; ++r) columns[c0 + c][r] = slab(r, c);
    }
  }
  return GroupMatrix::FromFeatureColumns(columns, store.subject_ids());
}

}  // namespace neuroprint::connectome
