#include "connectome/partial_correlation.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/stats.h"

namespace neuroprint::connectome {

Result<linalg::Matrix> BuildPartialCorrelationConnectome(
    const linalg::Matrix& region_series,
    const PartialCorrelationOptions& options) {
  const std::size_t regions = region_series.rows();
  if (regions < 2) {
    return Status::InvalidArgument(
        "BuildPartialCorrelationConnectome: need at least 2 regions");
  }
  if (region_series.cols() < 3) {
    return Status::InvalidArgument(
        "BuildPartialCorrelationConnectome: need at least 3 time points");
  }
  if (!region_series.AllFinite()) {
    return Status::InvalidArgument(
        "BuildPartialCorrelationConnectome: non-finite series");
  }
  if (options.shrinkage < 0.0) {
    return Status::InvalidArgument(
        "BuildPartialCorrelationConnectome: negative shrinkage");
  }

  linalg::Matrix cov = linalg::RowCovariance(region_series);
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < regions; ++i) mean_diag += cov(i, i);
  mean_diag /= static_cast<double>(regions);
  if (mean_diag <= 0.0) {
    return Status::FailedPrecondition(
        "BuildPartialCorrelationConnectome: degenerate (constant) series");
  }
  for (std::size_t i = 0; i < regions; ++i) {
    cov(i, i) += options.shrinkage * mean_diag;
  }

  auto precision = linalg::Inverse(cov);
  if (!precision.ok()) {
    return Status::FailedPrecondition(
        "BuildPartialCorrelationConnectome: covariance not invertible; "
        "increase shrinkage");
  }

  linalg::Matrix partial(regions, regions);
  for (std::size_t i = 0; i < regions; ++i) {
    partial(i, i) = 1.0;
    for (std::size_t j = i + 1; j < regions; ++j) {
      const double denom = std::sqrt((*precision)(i, i) * (*precision)(j, j));
      const double value = denom > 0.0 ? -(*precision)(i, j) / denom : 0.0;
      partial(i, j) = value;
      partial(j, i) = value;
    }
  }
  return partial;
}

}  // namespace neuroprint::connectome
