#include "connectome/group_matrix.h"

#include "util/string_util.h"

namespace neuroprint::connectome {

Result<GroupMatrix> GroupMatrix::FromConnectomes(
    const std::vector<linalg::Matrix>& connectomes,
    std::vector<std::string> subject_ids) {
  if (connectomes.empty()) {
    return Status::InvalidArgument("GroupMatrix: no connectomes");
  }
  std::vector<linalg::Vector> columns;
  columns.reserve(connectomes.size());
  for (const linalg::Matrix& c : connectomes) {
    auto v = VectorizeUpperTriangle(c);
    if (!v.ok()) return v.status();
    columns.push_back(std::move(v).value());
  }
  return FromFeatureColumns(columns, std::move(subject_ids));
}

Result<GroupMatrix> GroupMatrix::FromFeatureColumns(
    const std::vector<linalg::Vector>& columns,
    std::vector<std::string> subject_ids) {
  if (columns.empty()) {
    return Status::InvalidArgument("GroupMatrix: no feature columns");
  }
  if (subject_ids.size() != columns.size()) {
    return Status::InvalidArgument(StrFormat(
        "GroupMatrix: %zu subject ids for %zu columns", subject_ids.size(),
        columns.size()));
  }
  const std::size_t features = columns[0].size();
  if (features == 0) {
    return Status::InvalidArgument("GroupMatrix: empty feature vectors");
  }
  for (std::size_t j = 1; j < columns.size(); ++j) {
    if (columns[j].size() != features) {
      return Status::InvalidArgument(StrFormat(
          "GroupMatrix: column %zu has %zu features, expected %zu", j,
          columns[j].size(), features));
    }
  }
  GroupMatrix g;
  g.data_ = linalg::Matrix(features, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    for (std::size_t i = 0; i < features; ++i) g.data_(i, j) = columns[j][i];
  }
  g.subject_ids_ = std::move(subject_ids);
  return g;
}

Result<GroupMatrix> GroupMatrix::RestrictToFeatures(
    const std::vector<std::size_t>& feature_rows) const {
  if (feature_rows.empty()) {
    return Status::InvalidArgument("RestrictToFeatures: empty selection");
  }
  for (std::size_t row : feature_rows) {
    if (row >= num_features()) {
      return Status::OutOfRange(StrFormat(
          "RestrictToFeatures: row %zu out of %zu", row, num_features()));
    }
  }
  GroupMatrix g;
  g.data_ = linalg::Matrix(feature_rows.size(), num_subjects());
  for (std::size_t i = 0; i < feature_rows.size(); ++i) {
    const double* src = data_.RowPtr(feature_rows[i]);
    double* dst = g.data_.RowPtr(i);
    std::copy(src, src + num_subjects(), dst);
  }
  g.subject_ids_ = subject_ids_;
  return g;
}

Result<GroupMatrix> GroupMatrix::RestrictToSubjects(
    const std::vector<std::size_t>& subject_cols) const {
  if (subject_cols.empty()) {
    return Status::InvalidArgument("RestrictToSubjects: empty selection");
  }
  for (std::size_t col : subject_cols) {
    if (col >= num_subjects()) {
      return Status::OutOfRange(StrFormat(
          "RestrictToSubjects: column %zu out of %zu", col, num_subjects()));
    }
  }
  GroupMatrix g;
  g.data_ = linalg::Matrix(num_features(), subject_cols.size());
  g.subject_ids_.reserve(subject_cols.size());
  for (std::size_t j = 0; j < subject_cols.size(); ++j) {
    for (std::size_t i = 0; i < num_features(); ++i) {
      g.data_(i, j) = data_(i, subject_cols[j]);
    }
    g.subject_ids_.push_back(subject_ids_[subject_cols[j]]);
  }
  return g;
}

}  // namespace neuroprint::connectome
