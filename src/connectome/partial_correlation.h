// Partial-correlation connectomes: an alternative region-to-region
// coherence measure (the paper's method is agnostic to the choice — "for
// a given measure of region-to-region coherence", Section 3.1.2).
//
// The partial correlation between regions i and j conditions out every
// other region: rho_ij = -P_ij / sqrt(P_ii P_jj) where P is the inverse
// of the (regularized) covariance. It isolates direct coupling and is the
// common alternative to Pearson in the connectomics literature; the
// ablation bench compares both as attack substrates.

#ifndef NEUROPRINT_CONNECTOME_PARTIAL_CORRELATION_H_
#define NEUROPRINT_CONNECTOME_PARTIAL_CORRELATION_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::connectome {

struct PartialCorrelationOptions {
  /// Ridge term added to the covariance diagonal before inversion, as a
  /// fraction of the mean diagonal. Stabilizes the estimate when frames
  /// are scarce relative to regions (the usual fMRI regime).
  double shrinkage = 0.1;
};

/// Partial-correlation connectome from a regions x time series matrix.
/// Requires at least 3 time points; the shrunk covariance must be
/// invertible (guaranteed for shrinkage > 0 on non-degenerate data).
/// Output has unit diagonal and is symmetric.
Result<linalg::Matrix> BuildPartialCorrelationConnectome(
    const linalg::Matrix& region_series,
    const PartialCorrelationOptions& options = {});

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_PARTIAL_CORRELATION_H_
