// Group matrices: vectorized connectomes stacked column-wise, one column
// per subject (the paper's "A" of Section 3.1.2 — e.g. 64620 x 100).

#ifndef NEUROPRINT_CONNECTOME_GROUP_MATRIX_H_
#define NEUROPRINT_CONNECTOME_GROUP_MATRIX_H_

#include <string>
#include <vector>

#include "connectome/connectome.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::connectome {

/// A features x subjects matrix with per-column subject identifiers.
class GroupMatrix {
 public:
  GroupMatrix() = default;

  /// Builds from one connectome (region x region correlation matrix) per
  /// subject; all must share the region count.
  static Result<GroupMatrix> FromConnectomes(
      const std::vector<linalg::Matrix>& connectomes,
      std::vector<std::string> subject_ids);

  /// Builds from pre-vectorized feature columns.
  static Result<GroupMatrix> FromFeatureColumns(
      const std::vector<linalg::Vector>& columns,
      std::vector<std::string> subject_ids);

  std::size_t num_features() const { return data_.rows(); }
  std::size_t num_subjects() const { return data_.cols(); }

  const linalg::Matrix& data() const { return data_; }
  linalg::Matrix& mutable_data() { return data_; }
  const std::vector<std::string>& subject_ids() const { return subject_ids_; }

  /// One subject's feature column.
  linalg::Vector SubjectColumn(std::size_t subject) const {
    return data_.ColCopy(subject);
  }

  /// Restriction to a subset of feature rows (in the given order) — the
  /// feature-selection step of the attack. Indices must be in range.
  Result<GroupMatrix> RestrictToFeatures(
      const std::vector<std::size_t>& feature_rows) const;

  /// Restriction to a subset of subject columns (in the given order),
  /// keeping their ids — the survivor-selection step of partial-failure
  /// batches (util/batch.h). Indices must be in range.
  Result<GroupMatrix> RestrictToSubjects(
      const std::vector<std::size_t>& subject_cols) const;

 private:
  linalg::Matrix data_;
  std::vector<std::string> subject_ids_;
};

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_GROUP_MATRIX_H_
