#include "connectome/group_matrix_io.h"

#include <cstring>
#include <limits>
#include <utility>

#include "util/crc32c.h"
#include "util/endian.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace neuroprint::connectome {
namespace {

constexpr char kMagic[4] = {'N', 'P', 'G', 'M'};
// v1: no checksum. v2 appends crc32c(value bytes) after the payload;
// writers emit v2, readers accept both.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;
constexpr std::size_t kCrcTrailerBytes = 4;

// Bounds protecting the reader from allocating absurd sizes on corrupt
// input.
constexpr std::uint64_t kMaxFeatures = 1ull << 32;
constexpr std::uint64_t kMaxSubjects = 1ull << 24;
constexpr std::uint32_t kMaxIdLength = 4096;

// Values are little-endian on disk; AppendLE/ReadLE from util/endian.h keep
// the format stable across host byte orders without type-punned loads.

// Serialized header for `num_features` x ids.size() values, or
// InvalidArgument when an id exceeds the length bound.
Result<std::vector<char>> EncodeNpgmHeader(
    std::size_t num_features, const std::vector<std::string>& subject_ids) {
  std::vector<char> header;
  header.insert(header.end(), kMagic, kMagic + 4);
  AppendLE(header, kVersion);
  AppendLE(header, static_cast<std::uint64_t>(num_features));
  AppendLE(header, static_cast<std::uint64_t>(subject_ids.size()));
  for (const std::string& id : subject_ids) {
    if (id.size() > kMaxIdLength) {
      return Status::InvalidArgument("WriteGroupMatrix: subject id too long");
    }
    AppendLE(header, static_cast<std::uint32_t>(id.size()));
    header.insert(header.end(), id.begin(), id.end());
  }
  return header;
}

}  // namespace

namespace internal {

Result<NpgmHeader> ParseNpgmHeader(std::ifstream& in,
                                   const std::string& path) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::CorruptData("not a group-matrix file: " + path);
  }
  NpgmHeader header;
  if (!ReadLE(in, header.version) || !ReadLE(in, header.features) ||
      !ReadLE(in, header.subjects)) {
    return Status::CorruptData("truncated group-matrix header: " + path);
  }
  if (header.version < kMinVersion || header.version > kVersion) {
    return Status::Unimplemented(
        StrFormat("unsupported group-matrix version %u", header.version));
  }
  header.has_crc = header.version >= 2;
  if (header.features == 0 || header.features > kMaxFeatures ||
      header.subjects == 0 || header.subjects > kMaxSubjects) {
    return Status::CorruptData("implausible group-matrix dimensions");
  }

  header.subject_ids.resize(header.subjects);
  for (std::uint64_t j = 0; j < header.subjects; ++j) {
    std::uint32_t length = 0;
    if (!ReadLE(in, length) || length > kMaxIdLength) {
      return Status::CorruptData("bad subject id in group-matrix file");
    }
    header.subject_ids[j].resize(length);
    if (length > 0 && !in.read(header.subject_ids[j].data(), length)) {
      return Status::CorruptData("truncated subject ids");
    }
  }

  // The payload must account for exactly features x subjects doubles
  // (plus the v2 checksum trailer): fewer means truncation, more means
  // trailing garbage or a header whose counts disagree with the data —
  // all kCorruptData, and all caught before allocating `features * 8`
  // bytes against a file that cannot hold them.
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  if (data_begin < 0 || file_end < data_begin) {
    return Status::CorruptData("unreadable group-matrix payload: " + path);
  }
  const std::uint64_t expected =
      header.features * static_cast<std::uint64_t>(sizeof(double)) *
          header.subjects +
      (header.has_crc ? kCrcTrailerBytes : 0);
  const std::uint64_t available =
      static_cast<std::uint64_t>(file_end - data_begin);
  if (available < expected) {
    return Status::CorruptData(StrFormat(
        "group-matrix values truncated: header promises %llu x %llu "
        "subjects (%llu bytes), file holds %llu",
        static_cast<unsigned long long>(header.features),
        static_cast<unsigned long long>(header.subjects),
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(available)));
  }
  if (available > expected) {
    return Status::CorruptData(StrFormat(
        "group-matrix file has %llu trailing bytes after the %llu x %llu "
        "values — subject/feature counts disagree with the payload",
        static_cast<unsigned long long>(available - expected),
        static_cast<unsigned long long>(header.features),
        static_cast<unsigned long long>(header.subjects)));
  }
  if (header.has_crc) {
    in.seekg(file_end - static_cast<std::streamoff>(kCrcTrailerBytes));
    if (!ReadLE(in, header.value_crc)) {
      return Status::CorruptData("unreadable group-matrix checksum: " + path);
    }
  }
  in.clear();
  in.seekg(data_begin);
  header.data_offset = static_cast<std::uint64_t>(data_begin);
  return header;
}

}  // namespace internal

Result<GroupMatrixFileWriter> GroupMatrixFileWriter::Create(
    const std::string& path, std::size_t num_features,
    const std::vector<std::string>& subject_ids) {
  if (num_features == 0 || subject_ids.empty()) {
    return Status::InvalidArgument(
        "GroupMatrixFileWriter: empty group matrix");
  }
  if (subject_ids.size() > kMaxSubjects ||
      static_cast<std::uint64_t>(num_features) > kMaxFeatures) {
    return Status::InvalidArgument(
        "GroupMatrixFileWriter: dimensions exceed the format bounds");
  }
  std::vector<char> header;
  NP_ASSIGN_OR_RETURN(header, EncodeNpgmHeader(num_features, subject_ids));

  GroupMatrixFileWriter writer;
  writer.path_ = path;
  writer.num_features_ = num_features;
  writer.num_subjects_ = subject_ids.size();
  // Crash safety: everything lands in `path + ".tmp"`; only Finish()
  // publishes it under the real name.
  Result<AtomicFileWriter> out = AtomicFileWriter::Create(path);
  if (!out.ok()) return out.status();
  writer.out_ = std::move(out).value();
  NP_RETURN_IF_ERROR(writer.out_.Append(header.data(), header.size()));
  return writer;
}

Status GroupMatrixFileWriter::AppendColumn(const linalg::Vector& column) {
  if (columns_written_ >= num_subjects_) {
    return Status::FailedPrecondition(StrFormat(
        "GroupMatrixFileWriter: all %zu columns already written",
        num_subjects_));
  }
  if (column.size() != num_features_) {
    return Status::InvalidArgument(StrFormat(
        "GroupMatrixFileWriter: column has %zu values, header promises %zu",
        column.size(), num_features_));
  }
  encoded_.resize(column.size() * sizeof(double));
  for (std::size_t i = 0; i < column.size(); ++i) {
    WriteLE(column[i], encoded_.data() + i * sizeof(double));
  }
  value_crc_ = crc32c::Extend(value_crc_, encoded_.data(), encoded_.size());
  NP_RETURN_IF_ERROR(out_.Append(encoded_.data(), encoded_.size()));
  ++columns_written_;
  return Status::OK();
}

Status GroupMatrixFileWriter::Finish() {
  if (columns_written_ != num_subjects_) {
    return Status::FailedPrecondition(StrFormat(
        "GroupMatrixFileWriter: %zu of %zu columns written",
        columns_written_, num_subjects_));
  }
  std::uint8_t trailer[4];
  WriteLE(value_crc_, trailer);
  NP_RETURN_IF_ERROR(out_.Append(trailer, sizeof(trailer)));
  return out_.Commit();
}

Status WriteGroupMatrix(const std::string& path, const GroupMatrix& group) {
  if (group.num_subjects() == 0 || group.num_features() == 0) {
    return Status::InvalidArgument("WriteGroupMatrix: empty group matrix");
  }
  auto writer = GroupMatrixFileWriter::Create(path, group.num_features(),
                                              group.subject_ids());
  if (!writer.ok()) return writer.status();
  for (std::size_t j = 0; j < group.num_subjects(); ++j) {
    NP_RETURN_IF_ERROR(writer->AppendColumn(group.SubjectColumn(j)));
  }
  return writer->Finish();
}

Result<GroupMatrix> ReadGroupMatrix(const std::string& path) {
  NP_FAULT_POINT("io.group_matrix_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  internal::NpgmHeader header;
  NP_ASSIGN_OR_RETURN(header, internal::ParseNpgmHeader(in, path));

  std::vector<linalg::Vector> columns(header.subjects);
  std::vector<std::uint8_t> encoded(header.features * sizeof(double));
  std::uint32_t computed_crc = 0;
  for (std::uint64_t j = 0; j < header.subjects; ++j) {
    columns[j].resize(header.features);
    if (!in.read(reinterpret_cast<char*>(encoded.data()),
                 static_cast<std::streamsize>(encoded.size()))) {
      return Status::CorruptData("truncated group-matrix values");
    }
    if (header.has_crc) {
      computed_crc = crc32c::Extend(computed_crc, encoded.data(),
                                    encoded.size());
    }
    for (std::uint64_t i = 0; i < header.features; ++i) {
      columns[j][i] = ReadLE<double>(encoded.data() + i * sizeof(double));
    }
  }
  if (header.has_crc && computed_crc != header.value_crc) {
    // Bit rot (or a torn copy) inside the value payload: the dimensions
    // all line up but the bytes are not the ones the writer checksummed.
    return Status::CorruptData(StrFormat(
        "group-matrix value checksum mismatch (stored %08x, computed %08x): "
        "%s",
        header.value_crc, computed_crc, path.c_str()));
  }
  auto group =
      GroupMatrix::FromFeatureColumns(columns, std::move(header.subject_ids));
  if (!group.ok()) {
    // Structural inconsistencies surfaced by assembly are file corruption
    // from the reader's point of view, not caller error.
    return Status::CorruptData("inconsistent group-matrix file: " +
                               group.status().message());
  }
  return group;
}

}  // namespace neuroprint::connectome
