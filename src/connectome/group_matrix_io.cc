#include "connectome/group_matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "util/endian.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace neuroprint::connectome {
namespace {

constexpr char kMagic[4] = {'N', 'P', 'G', 'M'};
constexpr std::uint32_t kVersion = 1;

// Bounds protecting the reader from allocating absurd sizes on corrupt
// input.
constexpr std::uint64_t kMaxFeatures = 1ull << 32;
constexpr std::uint64_t kMaxSubjects = 1ull << 24;
constexpr std::uint32_t kMaxIdLength = 4096;

// Values are little-endian on disk; AppendLE/ReadLE from util/endian.h keep
// the format stable across host byte orders without type-punned loads.

}  // namespace

Status WriteGroupMatrix(const std::string& path, const GroupMatrix& group) {
  if (group.num_subjects() == 0 || group.num_features() == 0) {
    return Status::InvalidArgument("WriteGroupMatrix: empty group matrix");
  }
  std::vector<char> header;
  header.insert(header.end(), kMagic, kMagic + 4);
  AppendLE(header, kVersion);
  AppendLE(header, static_cast<std::uint64_t>(group.num_features()));
  AppendLE(header, static_cast<std::uint64_t>(group.num_subjects()));
  for (const std::string& id : group.subject_ids()) {
    if (id.size() > kMaxIdLength) {
      return Status::InvalidArgument("WriteGroupMatrix: subject id too long");
    }
    AppendLE(header, static_cast<std::uint32_t>(id.size()));
    header.insert(header.end(), id.begin(), id.end());
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  std::vector<std::uint8_t> encoded;
  for (std::size_t j = 0; j < group.num_subjects(); ++j) {
    const linalg::Vector column = group.SubjectColumn(j);
    encoded.resize(column.size() * sizeof(double));
    for (std::size_t i = 0; i < column.size(); ++i) {
      WriteLE(column[i], encoded.data() + i * sizeof(double));
    }
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<GroupMatrix> ReadGroupMatrix(const std::string& path) {
  NP_FAULT_POINT("io.group_matrix_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::CorruptData("not a group-matrix file: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t features = 0, subjects = 0;
  if (!ReadLE(in, version) || !ReadLE(in, features) ||
      !ReadLE(in, subjects)) {
    return Status::CorruptData("truncated group-matrix header: " + path);
  }
  if (version != kVersion) {
    return Status::Unimplemented(
        StrFormat("unsupported group-matrix version %u", version));
  }
  if (features == 0 || features > kMaxFeatures || subjects == 0 ||
      subjects > kMaxSubjects) {
    return Status::CorruptData("implausible group-matrix dimensions");
  }

  std::vector<std::string> ids(subjects);
  for (std::uint64_t j = 0; j < subjects; ++j) {
    std::uint32_t length = 0;
    if (!ReadLE(in, length) || length > kMaxIdLength) {
      return Status::CorruptData("bad subject id in group-matrix file");
    }
    ids[j].resize(length);
    if (length > 0 && !in.read(ids[j].data(), length)) {
      return Status::CorruptData("truncated subject ids");
    }
  }

  // The value payload must account for exactly features x subjects
  // doubles: fewer means truncation, more means trailing garbage or a
  // header whose counts disagree with the data — all kCorruptData, and
  // all caught before allocating `features * 8` bytes against a file
  // that cannot hold them.
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  if (data_begin < 0 || file_end < data_begin) {
    return Status::CorruptData("unreadable group-matrix payload: " + path);
  }
  in.seekg(data_begin);
  const std::uint64_t expected =
      features * static_cast<std::uint64_t>(sizeof(double)) * subjects;
  const std::uint64_t available =
      static_cast<std::uint64_t>(file_end - data_begin);
  if (available < expected) {
    return Status::CorruptData(StrFormat(
        "group-matrix values truncated: header promises %llu x %llu "
        "subjects (%llu bytes), file holds %llu",
        static_cast<unsigned long long>(features),
        static_cast<unsigned long long>(subjects),
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(available)));
  }
  if (available > expected) {
    return Status::CorruptData(StrFormat(
        "group-matrix file has %llu trailing bytes after the %llu x %llu "
        "values — subject/feature counts disagree with the payload",
        static_cast<unsigned long long>(available - expected),
        static_cast<unsigned long long>(features),
        static_cast<unsigned long long>(subjects)));
  }

  std::vector<linalg::Vector> columns(subjects);
  std::vector<std::uint8_t> encoded(features * sizeof(double));
  for (std::uint64_t j = 0; j < subjects; ++j) {
    columns[j].resize(features);
    if (!in.read(reinterpret_cast<char*>(encoded.data()),
                 static_cast<std::streamsize>(encoded.size()))) {
      return Status::CorruptData("truncated group-matrix values");
    }
    for (std::uint64_t i = 0; i < features; ++i) {
      columns[j][i] = ReadLE<double>(encoded.data() + i * sizeof(double));
    }
  }
  auto group = GroupMatrix::FromFeatureColumns(columns, std::move(ids));
  if (!group.ok()) {
    // Structural inconsistencies surfaced by assembly are file corruption
    // from the reader's point of view, not caller error.
    return Status::CorruptData("inconsistent group-matrix file: " +
                               group.status().message());
  }
  return group;
}

}  // namespace neuroprint::connectome
