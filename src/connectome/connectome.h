// Functional connectome construction: region x region Pearson correlation
// of region time series, and the vectorization that turns the (symmetric)
// correlation matrix into the paper's feature vector — the strict upper
// triangle stacked row-wise, giving n(n-1)/2 features (64620 for 360
// regions, 6670 for 116).

#ifndef NEUROPRINT_CONNECTOME_CONNECTOME_H_
#define NEUROPRINT_CONNECTOME_CONNECTOME_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::connectome {

/// Number of region-pair features for `regions` regions.
constexpr std::size_t NumEdges(std::size_t regions) {
  return regions * (regions - 1) / 2;
}

/// Pearson correlation connectome from a regions x time series matrix.
/// Requires at least 3 time points. The per-region-pair correlation loops
/// parallelize under `ctx`; results are identical at any thread count.
Result<linalg::Matrix> BuildConnectome(const linalg::Matrix& region_series,
                                       const ParallelContext& ctx = {});

/// Stacks the strict upper triangle of a symmetric n x n matrix into a
/// vector of n(n-1)/2 entries, ordered (0,1), (0,2), ..., (0,n-1), (1,2),
/// ... — the paper's feature layout.
Result<linalg::Vector> VectorizeUpperTriangle(const linalg::Matrix& m);

/// Inverse of VectorizeUpperTriangle: rebuilds the symmetric matrix with
/// unit diagonal.
Result<linalg::Matrix> DevectorizeUpperTriangle(const linalg::Vector& v,
                                                std::size_t regions);

/// Maps a feature index back to its (row, col) region pair.
Result<std::pair<std::size_t, std::size_t>> EdgeIndexToRegionPair(
    std::size_t edge_index, std::size_t regions);

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_CONNECTOME_H_
