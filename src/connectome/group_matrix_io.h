// Binary persistence for GroupMatrix: preprocessing a large cohort is
// the expensive step of the attack (minutes of registration/filtering per
// scan), so tools cache the extracted feature matrices on disk.
//
// Format ("NPGM" v2, little-endian):
//   magic "NPGM" | u32 version | u64 features | u64 subjects |
//   per subject: u32 id_length, id bytes |
//   features*subjects f64 values (column-major: subject by subject) |
//   u32 crc32c(value bytes)                                  (v2 only)
//
// Writers produce v2 and are crash-safe: bytes land in `path + ".tmp"`
// and the finished file is fsynced and renamed into place
// (util/journal.h AtomicFileWriter), so a crash mid-write can never
// leave a truncated NPGM under the real name — readers see the old file
// or the complete new one. ReadGroupMatrix verifies the v2 value
// checksum (CorruptData on mismatch) and still accepts checksum-less v1
// files; FileMatrixStore seeks tiles on demand and therefore cannot
// affordably checksum the whole payload at Open — it relies on the
// exact-size check plus the atomic-publish contract.

#ifndef NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
#define NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "util/journal.h"
#include "util/status.h"

namespace neuroprint::connectome {

/// Writes the group matrix to `path`, overwriting.
Status WriteGroupMatrix(const std::string& path, const GroupMatrix& group);

/// Reads a group matrix previously written by WriteGroupMatrix. Returns
/// CorruptData for malformed or truncated files.
Result<GroupMatrix> ReadGroupMatrix(const std::string& path);

/// Incremental NPGM writer for cohorts too large to materialize: the
/// subject ids (and therefore the column count) are fixed up front, then
/// columns stream in one at a time in subject order. Bytes accumulate in
/// `path + ".tmp"`; only Finish() — after confirming every promised
/// column arrived and appending the value checksum — publishes the file
/// atomically, so `path` never holds a partial cohort (an abandoned
/// writer unlinks its temp file). A file produced by WriteGroupMatrix of
/// the same matrix is byte-identical.
class GroupMatrixFileWriter {
 public:
  static Result<GroupMatrixFileWriter> Create(
      const std::string& path, std::size_t num_features,
      const std::vector<std::string>& subject_ids);

  GroupMatrixFileWriter(GroupMatrixFileWriter&&) = default;
  GroupMatrixFileWriter& operator=(GroupMatrixFileWriter&&) = default;
  GroupMatrixFileWriter(const GroupMatrixFileWriter&) = delete;
  GroupMatrixFileWriter& operator=(const GroupMatrixFileWriter&) = delete;

  /// Appends the next subject's feature column (must have num_features
  /// values). FailedPrecondition once every promised column was written.
  Status AppendColumn(const linalg::Vector& column);

  std::size_t columns_written() const { return columns_written_; }

  /// Validates that exactly the promised columns arrived, appends the
  /// value checksum, and atomically publishes the file (fsync + rename).
  Status Finish();

 private:
  GroupMatrixFileWriter() = default;

  std::string path_;
  AtomicFileWriter out_;
  std::size_t num_features_ = 0;
  std::size_t num_subjects_ = 0;
  std::size_t columns_written_ = 0;
  std::uint32_t value_crc_ = 0;
  std::vector<std::uint8_t> encoded_;
};

namespace internal {

/// Parsed + validated NPGM header (shared by ReadGroupMatrix and
/// FileMatrixStore::Open): magic, version, dimension bounds, ids, and
/// the exact-payload-size check all happen here, leaving `in` positioned
/// at the first value byte.
struct NpgmHeader {
  std::uint32_t version = 0;
  std::uint64_t features = 0;
  std::uint64_t subjects = 0;
  std::vector<std::string> subject_ids;
  std::uint64_t data_offset = 0;
  /// v2 files: crc32c of the value payload, from the trailer (meaningful
  /// only when has_crc). Full-file readers verify it; the tile-seeking
  /// FileMatrixStore documents that it does not.
  bool has_crc = false;
  std::uint32_t value_crc = 0;
};

Result<NpgmHeader> ParseNpgmHeader(std::ifstream& in, const std::string& path);

}  // namespace internal

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
