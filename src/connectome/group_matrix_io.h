// Binary persistence for GroupMatrix: preprocessing a large cohort is
// the expensive step of the attack (minutes of registration/filtering per
// scan), so tools cache the extracted feature matrices on disk.
//
// Format ("NPGM" v1, little-endian):
//   magic "NPGM" | u32 version | u64 features | u64 subjects |
//   per subject: u32 id_length, id bytes |
//   features*subjects f64 values (column-major: subject by subject).

#ifndef NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
#define NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_

#include <string>

#include "connectome/group_matrix.h"
#include "util/status.h"

namespace neuroprint::connectome {

/// Writes the group matrix to `path`, overwriting.
Status WriteGroupMatrix(const std::string& path, const GroupMatrix& group);

/// Reads a group matrix previously written by WriteGroupMatrix. Returns
/// CorruptData for malformed or truncated files.
Result<GroupMatrix> ReadGroupMatrix(const std::string& path);

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
