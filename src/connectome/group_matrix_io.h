// Binary persistence for GroupMatrix: preprocessing a large cohort is
// the expensive step of the attack (minutes of registration/filtering per
// scan), so tools cache the extracted feature matrices on disk.
//
// Format ("NPGM" v1, little-endian):
//   magic "NPGM" | u32 version | u64 features | u64 subjects |
//   per subject: u32 id_length, id bytes |
//   features*subjects f64 values (column-major: subject by subject).

#ifndef NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
#define NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "util/status.h"

namespace neuroprint::connectome {

/// Writes the group matrix to `path`, overwriting.
Status WriteGroupMatrix(const std::string& path, const GroupMatrix& group);

/// Reads a group matrix previously written by WriteGroupMatrix. Returns
/// CorruptData for malformed or truncated files.
Result<GroupMatrix> ReadGroupMatrix(const std::string& path);

/// Incremental NPGM writer for cohorts too large to materialize: the
/// subject ids (and therefore the column count) are fixed up front, then
/// columns stream in one at a time in subject order. The file is only
/// valid after Finish() confirms every promised column arrived; a file
/// produced by WriteGroupMatrix of the same matrix is byte-identical.
class GroupMatrixFileWriter {
 public:
  static Result<GroupMatrixFileWriter> Create(
      const std::string& path, std::size_t num_features,
      const std::vector<std::string>& subject_ids);

  GroupMatrixFileWriter(GroupMatrixFileWriter&&) = default;
  GroupMatrixFileWriter& operator=(GroupMatrixFileWriter&&) = default;
  GroupMatrixFileWriter(const GroupMatrixFileWriter&) = delete;
  GroupMatrixFileWriter& operator=(const GroupMatrixFileWriter&) = delete;

  /// Appends the next subject's feature column (must have num_features
  /// values). FailedPrecondition once every promised column was written.
  Status AppendColumn(const linalg::Vector& column);

  std::size_t columns_written() const { return columns_written_; }

  /// Flushes and validates that exactly the promised columns arrived.
  Status Finish();

 private:
  GroupMatrixFileWriter() = default;

  std::string path_;
  std::ofstream out_;
  std::size_t num_features_ = 0;
  std::size_t num_subjects_ = 0;
  std::size_t columns_written_ = 0;
  std::vector<std::uint8_t> encoded_;
};

namespace internal {

/// Parsed + validated NPGM header (shared by ReadGroupMatrix and
/// FileMatrixStore::Open): magic, version, dimension bounds, ids, and
/// the exact-payload-size check all happen here, leaving `in` positioned
/// at the first value byte.
struct NpgmHeader {
  std::uint64_t features = 0;
  std::uint64_t subjects = 0;
  std::vector<std::string> subject_ids;
  std::uint64_t data_offset = 0;
};

Result<NpgmHeader> ParseNpgmHeader(std::ifstream& in, const std::string& path);

}  // namespace internal

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_GROUP_MATRIX_IO_H_
