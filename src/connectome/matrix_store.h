// Out-of-core access to group matrices: a windowed-tile read interface
// (`MatrixStore`) with an in-RAM adapter, a file-backed NPGM reader, and
// the streamed Gram kernel the out-of-core attack builds on.
//
// Determinism contract (see docs/ANALYSIS.md "Out-of-core"): every
// streamed kernel issues only full-K GEMM calls — a Gram block is
// MatTMul over two full-height column slabs, a scoring tile is MatMul
// over a full-width row slab — so each output element is produced by the
// canonical fixed-panel summation of gemm_kernel.h, exactly as the
// in-RAM call produces it. Window size and row-tile size therefore
// never change a single bit, at any thread count; the `out-of-core`
// test tier asserts bitwise equality across window sizes x threads.
//
// The file backend reads tiles with explicit seeks (no mmap): bounded,
// predictable resident set; a mid-tile truncation (file shrank after
// Open) surfaces CorruptData naming the tile, and the `io.stream` fault
// point (keyed by absolute column index) can inject errors or corrupt /
// poison a column mid-stream.

#ifndef NEUROPRINT_CONNECTOME_MATRIX_STORE_H_
#define NEUROPRINT_CONNECTOME_MATRIX_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "linalg/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace neuroprint::connectome {

/// Column-windowed access to a features x subjects matrix. Implementations
/// must return tiles bitwise-equal to the corresponding Block of the fully
/// materialized matrix.
class MatrixStore {
 public:
  virtual ~MatrixStore() = default;

  virtual std::size_t num_features() const = 0;
  virtual std::size_t num_subjects() const = 0;
  virtual const std::vector<std::string>& subject_ids() const = 0;

  /// Reads the tile [row0, row0 + row_count) x [col0, col0 + col_count)
  /// into `out` (resized to row_count x col_count, row-major).
  /// InvalidArgument when the tile exceeds the matrix bounds.
  virtual Status ReadTile(std::size_t row0, std::size_t row_count,
                          std::size_t col0, std::size_t col_count,
                          linalg::Matrix* out) const = 0;

  /// Full-height column window [col0, col0 + col_count).
  Status ReadColumns(std::size_t col0, std::size_t col_count,
                     linalg::Matrix* out) const {
    return ReadTile(0, num_features(), col0, col_count, out);
  }
};

/// In-RAM adapter: a non-owning view of a GroupMatrix (the caller keeps
/// it alive). The parity oracle of the out-of-core tests, and the cheap
/// way to run the streamed kernels on an already-materialized cohort.
class InMemoryMatrixStore final : public MatrixStore {
 public:
  explicit InMemoryMatrixStore(const GroupMatrix& group) : group_(&group) {}

  std::size_t num_features() const override { return group_->num_features(); }
  std::size_t num_subjects() const override { return group_->num_subjects(); }
  const std::vector<std::string>& subject_ids() const override {
    return group_->subject_ids();
  }
  Status ReadTile(std::size_t row0, std::size_t row_count, std::size_t col0,
                  std::size_t col_count, linalg::Matrix* out) const override;

 private:
  const GroupMatrix* group_;
};

/// File-backed NPGM store: validates the full header (magic, version,
/// dimension bounds, ids, exact payload size — the ReadGroupMatrix
/// checks) at Open, then serves tiles with per-column seeks. Reads are
/// serialized on an internal mutex; the streamed kernels issue them from
/// one thread and parallelize the compute instead.
class FileMatrixStore final : public MatrixStore {
 public:
  /// Opens and validates `path`. CorruptData / Unimplemented / IOError
  /// exactly as ReadGroupMatrix reports them.
  static Result<std::unique_ptr<FileMatrixStore>> Open(
      const std::string& path);

  std::size_t num_features() const override { return features_; }
  std::size_t num_subjects() const override { return subjects_; }
  const std::vector<std::string>& subject_ids() const override {
    return subject_ids_;
  }
  Status ReadTile(std::size_t row0, std::size_t row_count, std::size_t col0,
                  std::size_t col_count, linalg::Matrix* out) const override;

 private:
  FileMatrixStore() = default;

  /// Reads rows [row0, row0 + row_count) of column `col` into encoded_
  /// (caller holds mutex_). CorruptData on a short read.
  Status ReadColumnBytes(std::size_t col, std::size_t row0,
                         std::size_t row_count) const;

  std::string path_;
  std::size_t features_ = 0;
  std::size_t subjects_ = 0;
  std::vector<std::string> subject_ids_;
  std::uint64_t data_offset_ = 0;
  mutable std::mutex mutex_;
  mutable std::ifstream file_;
  /// Per-call decode buffer, guarded by mutex_.
  mutable std::vector<std::uint8_t> encoded_;
};

/// Column-subset view of another store (the survivor-restriction step of
/// the streamed attack): column j of the view is column `columns[j]` of
/// the base store, ids remapped to match. Non-owning; the base store must
/// outlive the view.
class SubsetColumnsStore final : public MatrixStore {
 public:
  /// InvalidArgument when any index is out of range.
  static Result<SubsetColumnsStore> Create(const MatrixStore& base,
                                           std::vector<std::size_t> columns);

  std::size_t num_features() const override { return base_->num_features(); }
  std::size_t num_subjects() const override { return columns_.size(); }
  const std::vector<std::string>& subject_ids() const override {
    return subject_ids_;
  }
  Status ReadTile(std::size_t row0, std::size_t row_count, std::size_t col0,
                  std::size_t col_count, linalg::Matrix* out) const override;

 private:
  SubsetColumnsStore() = default;

  const MatrixStore* base_ = nullptr;
  std::vector<std::size_t> columns_;
  std::vector<std::string> subject_ids_;
};

/// Knobs for the streamed kernels. Every setting trades memory for IO
/// only — results are bitwise-identical at any value (the window
/// determinism contract above).
struct StreamOptions {
  /// Columns per slab. 0 derives a width from NEUROPRINT_MEMORY_BUDGET_MB
  /// (64 MiB working set when unset).
  std::size_t window_cols = 0;
  /// Rows per scoring tile. 0 derives like window_cols.
  std::size_t row_tile = 0;
  /// Threads for the per-slab GEMM calls (never changes results).
  ParallelContext parallel;
};

/// Slab width / tile height derivation from the memory budget; exposed so
/// tests can pin the derived values. `requested` wins when non-zero.
std::size_t DeriveWindowCols(std::size_t features, std::size_t subjects,
                             std::size_t requested);
std::size_t DeriveRowTile(std::size_t features, std::size_t subjects,
                          std::size_t requested);

/// G = A^T A streamed over column-window pairs: each block is
/// MatTMul(slab_a, slab_b) over full feature columns, mirrored into the
/// symmetric result — bitwise-equal to linalg::Gram(materialized) at any
/// window size and thread count, with only two slabs resident.
Result<linalg::Matrix> StreamedGram(const MatrixStore& store,
                                    const StreamOptions& options = {});

/// Fully materializes the store as a GroupMatrix (the fallback for
/// shapes the streamed kernels do not cover, and the test oracle).
Result<GroupMatrix> MaterializeStore(const MatrixStore& store);

}  // namespace neuroprint::connectome

#endif  // NEUROPRINT_CONNECTOME_MATRIX_STORE_H_
