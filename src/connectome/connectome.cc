#include "connectome/connectome.h"

#include <cmath>

#include "linalg/stats.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace neuroprint::connectome {

Result<linalg::Matrix> BuildConnectome(const linalg::Matrix& region_series,
                                       const ParallelContext& ctx) {
  NP_TRACE_SCOPE("connectome.build");
  if (region_series.rows() < 2) {
    return Status::InvalidArgument(
        "BuildConnectome: need at least 2 regions");
  }
  if (region_series.cols() < 3) {
    return Status::InvalidArgument(
        "BuildConnectome: need at least 3 time points");
  }
  if (!region_series.AllFinite()) {
    return Status::InvalidArgument("BuildConnectome: non-finite series");
  }
  // Runs inside parallel regions (cohort synthesis): integer counter adds
  // commute exactly, so these stay semantic-deterministic.
  metrics::Count("connectome.builds", 1);
  metrics::Count("connectome.edges", NumEdges(region_series.rows()));
  return linalg::RowCorrelation(region_series, ctx);
}

Result<linalg::Vector> VectorizeUpperTriangle(const linalg::Matrix& m) {
  const std::size_t n = m.rows();
  if (m.cols() != n) {
    return Status::InvalidArgument("VectorizeUpperTriangle: not square");
  }
  if (n < 2) {
    return Status::InvalidArgument(
        "VectorizeUpperTriangle: need at least 2 regions");
  }
  linalg::Vector v;
  v.reserve(NumEdges(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) v.push_back(m(i, j));
  }
  return v;
}

Result<linalg::Matrix> DevectorizeUpperTriangle(const linalg::Vector& v,
                                                std::size_t regions) {
  if (regions < 2) {
    return Status::InvalidArgument(
        "DevectorizeUpperTriangle: need at least 2 regions");
  }
  if (v.size() != NumEdges(regions)) {
    return Status::InvalidArgument(StrFormat(
        "DevectorizeUpperTriangle: %zu features does not match %zu regions "
        "(expected %zu)",
        v.size(), regions, NumEdges(regions)));
  }
  linalg::Matrix m(regions, regions);
  std::size_t k = 0;
  for (std::size_t i = 0; i < regions; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < regions; ++j, ++k) {
      m(i, j) = v[k];
      m(j, i) = v[k];
    }
  }
  return m;
}

Result<std::pair<std::size_t, std::size_t>> EdgeIndexToRegionPair(
    std::size_t edge_index, std::size_t regions) {
  if (regions < 2 || edge_index >= NumEdges(regions)) {
    return Status::OutOfRange("EdgeIndexToRegionPair: index out of range");
  }
  // Row i owns (regions - 1 - i) edges; walk rows until the index fits.
  std::size_t remaining = edge_index;
  for (std::size_t i = 0; i + 1 < regions; ++i) {
    const std::size_t row_edges = regions - 1 - i;
    if (remaining < row_edges) {
      return std::make_pair(i, i + 1 + remaining);
    }
    remaining -= row_edges;
  }
  return Status::Internal("EdgeIndexToRegionPair: unreachable");
}

}  // namespace neuroprint::connectome
