#include "signal/resample.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr int kLanczosA = 4;

double Sinc(double x) {
  if (x == 0.0) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

double LanczosKernel(double x) {
  if (std::fabs(x) >= kLanczosA) return 0.0;
  return Sinc(x) * Sinc(x / kLanczosA);
}

double SampleClamped(const std::vector<double>& x, std::ptrdiff_t i) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  return x[static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(i, 0, n - 1))];
}

double EvaluateAt(const std::vector<double>& x, double t, InterpKind kind) {
  const double n_minus_1 = static_cast<double>(x.size() - 1);
  const double tc = std::clamp(t, 0.0, n_minus_1);
  switch (kind) {
    case InterpKind::kLinear: {
      const double floor_t = std::floor(tc);
      const auto i0 = static_cast<std::ptrdiff_t>(floor_t);
      const double frac = tc - floor_t;
      return (1.0 - frac) * SampleClamped(x, i0) +
             frac * SampleClamped(x, i0 + 1);
    }
    case InterpKind::kWindowedSinc: {
      const auto center = static_cast<std::ptrdiff_t>(std::floor(tc));
      double value = 0.0;
      double weight_sum = 0.0;
      for (std::ptrdiff_t k = center - kLanczosA + 1; k <= center + kLanczosA;
           ++k) {
        const double w = LanczosKernel(tc - static_cast<double>(k));
        value += w * SampleClamped(x, k);
        weight_sum += w;
      }
      // Renormalize near boundaries where the kernel is truncated.
      return weight_sum != 0.0 ? value / weight_sum : value;
    }
  }
  return 0.0;
}

}  // namespace

Result<std::vector<double>> ShiftSeries(const std::vector<double>& x,
                                        double shift, InterpKind kind) {
  if (x.empty()) return Status::InvalidArgument("ShiftSeries: empty input");
  if (!std::isfinite(shift)) {
    return Status::InvalidArgument("ShiftSeries: non-finite shift");
  }
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = EvaluateAt(x, static_cast<double>(i) + shift, kind);
  }
  return out;
}

Result<std::vector<double>> ResampleSeries(const std::vector<double>& x,
                                           double tr_in, double tr_out,
                                           InterpKind kind) {
  if (x.empty()) return Status::InvalidArgument("ResampleSeries: empty input");
  if (tr_in <= 0.0 || tr_out <= 0.0) {
    return Status::InvalidArgument("ResampleSeries: intervals must be positive");
  }
  const double span = tr_in * static_cast<double>(x.size() - 1);
  const std::size_t n_out =
      1 + static_cast<std::size_t>(std::floor(span / tr_out + 1e-9));
  std::vector<double> out(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = static_cast<double>(i) * tr_out / tr_in;
    out[i] = EvaluateAt(x, t, kind);
  }
  return out;
}

}  // namespace neuroprint::signal
