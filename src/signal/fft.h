// Fast Fourier transform: iterative radix-2 Cooley–Tukey for power-of-two
// lengths and Bluestein's chirp-z algorithm for arbitrary lengths, so the
// temporal filters work on any scan length (HCP resting scans have 1200
// frames; task scans range from 176 to 405).

#ifndef NEUROPRINT_SIGNAL_FFT_H_
#define NEUROPRINT_SIGNAL_FFT_H_

#include <complex>
#include <vector>

namespace neuroprint::signal {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

/// In-place forward DFT (engineering sign convention, no normalization).
/// Works for any length via Bluestein when the size is not a power of two.
void Fft(ComplexVector& data);

/// In-place inverse DFT with 1/n normalization (Ifft(Fft(x)) == x).
void Ifft(ComplexVector& data);

/// Forward DFT of a real signal; returns the full complex spectrum
/// (length n, conjugate-symmetric).
ComplexVector RealFft(const std::vector<double>& x);

/// Real part of the inverse DFT of `spectrum` (the caller guarantees
/// conjugate symmetry; any residual imaginary part is dropped).
std::vector<double> RealIfft(const ComplexVector& spectrum);

/// True if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

/// Circular convolution of two equal-length real signals via FFT.
std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace neuroprint::signal

#endif  // NEUROPRINT_SIGNAL_FFT_H_
