#include "signal/filters.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "signal/fft.h"

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;

bool AllFinite(const std::vector<double>& x) {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Raised-cosine gain for one band edge: 0 below (edge - width), 1 above
// (edge + width) for a rising edge (and mirrored for a falling edge).
double RisingEdgeGain(double freq, double edge, double width) {
  if (width <= 0.0) return freq >= edge ? 1.0 : 0.0;
  if (freq <= edge - width) return 0.0;
  if (freq >= edge + width) return 1.0;
  const double t = (freq - (edge - width)) / (2.0 * width);
  return 0.5 * (1.0 - std::cos(kPi * t));
}

}  // namespace

Result<std::vector<double>> BandPassFilter(const std::vector<double>& x,
                                           const BandPassConfig& config) {
  const std::size_t n = x.size();
  if (n == 0) return Status::InvalidArgument("BandPassFilter: empty input");
  if (!AllFinite(x)) {
    return Status::InvalidArgument("BandPassFilter: non-finite input");
  }
  if (config.tr_seconds <= 0.0) {
    return Status::InvalidArgument("BandPassFilter: TR must be positive");
  }
  const double nyquist = 0.5 / config.tr_seconds;
  if (config.high_cutoff_hz > nyquist) {
    return Status::InvalidArgument(
        "BandPassFilter: high cutoff above Nyquist frequency");
  }
  if (config.low_cutoff_hz > 0.0 && config.high_cutoff_hz > 0.0 &&
      config.low_cutoff_hz >= config.high_cutoff_hz) {
    return Status::InvalidArgument(
        "BandPassFilter: low cutoff must be below high cutoff");
  }
  if (n == 1) return std::vector<double>{config.low_cutoff_hz > 0.0 ? 0.0 : x[0]};

  ComplexVector spectrum = RealFft(x);
  const double df = 1.0 / (config.tr_seconds * static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    // Two-sided spectrum: bin k corresponds to frequency min(k, n-k) * df.
    const std::size_t kk = std::min(k, n - k);
    const double freq = static_cast<double>(kk) * df;
    double gain = 1.0;
    if (config.low_cutoff_hz > 0.0) {
      gain *= RisingEdgeGain(freq, config.low_cutoff_hz,
                             config.transition_width_hz);
      if (k == 0) gain = 0.0;  // Always remove DC with a high-pass edge.
    }
    if (config.high_cutoff_hz > 0.0) {
      gain *= 1.0 - RisingEdgeGain(freq, config.high_cutoff_hz,
                                   config.transition_width_hz);
    }
    spectrum[k] *= gain;
  }
  return RealIfft(spectrum);
}

Result<std::vector<double>> HighPassFilter(const std::vector<double>& x,
                                           double cutoff_hz,
                                           double tr_seconds) {
  BandPassConfig config;
  config.low_cutoff_hz = cutoff_hz;
  config.high_cutoff_hz = 0.0;
  config.transition_width_hz = 0.25 * cutoff_hz;
  config.tr_seconds = tr_seconds;
  return BandPassFilter(x, config);
}

Result<std::vector<double>> DetrendPolynomial(const std::vector<double>& x,
                                              int degree) {
  const std::size_t n = x.size();
  if (n == 0) return Status::InvalidArgument("DetrendPolynomial: empty input");
  if (degree < 0) {
    return Status::InvalidArgument("DetrendPolynomial: negative degree");
  }
  if (static_cast<std::size_t>(degree) >= n) {
    return Status::InvalidArgument(
        "DetrendPolynomial: degree must be < series length");
  }
  if (!AllFinite(x)) {
    return Status::InvalidArgument("DetrendPolynomial: non-finite input");
  }

  // Design matrix of scaled time powers (t in [-1, 1] for conditioning).
  const std::size_t p = static_cast<std::size_t>(degree) + 1;
  linalg::Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        n > 1 ? 2.0 * static_cast<double>(i) / static_cast<double>(n - 1) - 1.0
              : 0.0;
    double power = 1.0;
    for (std::size_t j = 0; j < p; ++j) {
      design(i, j) = power;
      power *= t;
    }
  }
  auto coeffs = linalg::LeastSquares(design, x);
  if (!coeffs.ok()) return coeffs.status();
  const linalg::Vector fitted = linalg::MatVec(design, *coeffs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - fitted[i];
  return out;
}

Result<std::vector<double>> DetrendLinear(const std::vector<double>& x) {
  return DetrendPolynomial(x, 1);
}

Result<std::vector<double>> RegressOut(const std::vector<double>& x,
                                       const std::vector<double>& confound) {
  return RegressOutMany(x, {confound});
}

Result<std::vector<double>> RegressOutMany(
    const std::vector<double>& x,
    const std::vector<std::vector<double>>& confounds) {
  const std::size_t n = x.size();
  if (n == 0) return Status::InvalidArgument("RegressOutMany: empty input");
  for (const auto& c : confounds) {
    if (c.size() != n) {
      return Status::InvalidArgument(
          "RegressOutMany: confound length mismatch");
    }
  }
  const std::size_t p = confounds.size() + 1;
  if (p >= n) {
    return Status::InvalidArgument(
        "RegressOutMany: more regressors than time points");
  }
  linalg::Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    for (std::size_t j = 0; j < confounds.size(); ++j) {
      design(i, j + 1) = confounds[j][i];
    }
  }
  auto coeffs = linalg::LeastSquares(design, x);
  if (!coeffs.ok()) {
    // Degenerate confounds (e.g. an all-zero global signal): fall back to
    // demeaning only, which is the no-op regression with intercept.
    std::vector<double> out = x;
    double mean = 0.0;
    for (double v : out) mean += v;
    mean /= static_cast<double>(n);
    for (double& v : out) v -= mean;
    return out;
  }
  const linalg::Vector fitted = linalg::MatVec(design, *coeffs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - fitted[i];
  return out;
}

double BandPower(const std::vector<double>& x, double low_hz, double high_hz,
                 double tr_seconds) {
  const std::size_t n = x.size();
  if (n == 0 || tr_seconds <= 0.0) return 0.0;
  const ComplexVector spectrum = RealFft(x);
  const double df = 1.0 / (tr_seconds * static_cast<double>(n));
  double power = 0.0;
  std::size_t bins = 0;
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double freq = static_cast<double>(k) * df;
    if (freq >= low_hz && freq < high_hz) {
      power += std::norm(spectrum[k]);
      ++bins;
    }
  }
  if (bins == 0) return 0.0;
  return power / (static_cast<double>(bins) * static_cast<double>(n) *
                  static_cast<double>(n));
}

}  // namespace neuroprint::signal
