// Spectral estimation: window functions and Welch's averaged-periodogram
// power spectral density. Used as a diagnostic for the temporal filters
// (verifying pass/stop bands on real signals) and for characterizing the
// spectra of simulated and preprocessed fMRI series.

#ifndef NEUROPRINT_SIGNAL_SPECTRAL_H_
#define NEUROPRINT_SIGNAL_SPECTRAL_H_

#include <vector>

#include "util/status.h"

namespace neuroprint::signal {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
};

/// Window of length n (symmetric form). n >= 1.
Result<std::vector<double>> MakeWindow(WindowKind kind, std::size_t n);

struct WelchOptions {
  std::size_t segment_length = 128;
  /// Overlap between consecutive segments, as a fraction of the segment
  /// length in [0, 0.95]. 0.5 is the classic Welch choice.
  double overlap = 0.5;
  WindowKind window = WindowKind::kHann;
  double tr_seconds = 0.72;
};

/// One-sided PSD estimate.
struct PowerSpectrum {
  std::vector<double> frequency_hz;  ///< Bin centres, 0 .. Nyquist.
  std::vector<double> power;         ///< Power density per bin.

  /// Integrated power over [low_hz, high_hz).
  double BandPower(double low_hz, double high_hz) const;
};

/// Welch PSD of `x`. The series must be at least one segment long;
/// segments are demeaned and windowed before their periodograms are
/// averaged. The estimate satisfies (discrete) Parseval: the sum of
/// `power` approximates the signal variance.
Result<PowerSpectrum> WelchPsd(const std::vector<double>& x,
                               const WelchOptions& options = {});

}  // namespace neuroprint::signal

#endif  // NEUROPRINT_SIGNAL_SPECTRAL_H_
