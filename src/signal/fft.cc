#include "signal/fft.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;

// Iterative radix-2 Cooley–Tukey; `data` length must be a power of two.
// `invert` flips the exponent sign (normalization handled by the caller).
void FftRadix2(ComplexVector& data, bool invert) {
  const std::size_t n = data.size();
  if (n < 2) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) * (invert ? 1 : -1);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's algorithm: expresses a length-n DFT as a convolution, which
// is evaluated with power-of-two FFTs. Handles any n.
void FftBluestein(ComplexVector& data, bool invert) {
  const std::size_t n = data.size();
  const std::size_t m = NextPowerOfTwo(2 * n + 1);
  const double sign = invert ? 1.0 : -1.0;

  // Chirp factors w_k = exp(sign * i * pi * k^2 / n).
  ComplexVector chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), sign * std::sin(angle));
  }

  ComplexVector a(m, Complex(0, 0));
  ComplexVector b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  FftRadix2(a, false);
  FftRadix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  FftRadix2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * scale * chirp[k];
  }
}

void FftImpl(ComplexVector& data, bool invert) {
  const std::size_t n = data.size();
  if (n < 2) return;
  if (IsPowerOfTwo(n)) {
    FftRadix2(data, invert);
  } else {
    FftBluestein(data, invert);
  }
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(ComplexVector& data) { FftImpl(data, false); }

void Ifft(ComplexVector& data) {
  FftImpl(data, true);
  const double scale = 1.0 / static_cast<double>(data.empty() ? 1 : data.size());
  for (Complex& c : data) c *= scale;
}

ComplexVector RealFft(const std::vector<double>& x) {
  ComplexVector data(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = Complex(x[i], 0.0);
  Fft(data);
  return data;
}

std::vector<double> RealIfft(const ComplexVector& spectrum) {
  ComplexVector data = spectrum;
  Ifft(data);
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  NP_CHECK_EQ(a.size(), b.size());
  ComplexVector fa = RealFft(a);
  const ComplexVector fb = RealFft(b);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  return RealIfft(fa);
}

}  // namespace neuroprint::signal
