// Temporal filtering and detrending of fMRI time series.
//
// The paper band-passes resting-state signals to 0.008–0.1 Hz (the
// haemodynamic fluctuation band), high-passes task data (cutoff 1/200 s),
// and detrends scanner drift. Filters here are zero-phase FFT-domain
// filters with a raised-cosine transition band ("slow roll off", matching
// the HCP pipeline description in the paper's Section 3.2.1).

#ifndef NEUROPRINT_SIGNAL_FILTERS_H_
#define NEUROPRINT_SIGNAL_FILTERS_H_

#include <vector>

#include "util/status.h"

namespace neuroprint::signal {

/// Frequency-domain band-pass specification. Frequencies in Hz; the
/// sampling interval tr_seconds is the fMRI repetition time (TR).
struct BandPassConfig {
  double low_cutoff_hz = 0.008;   ///< Passband lower edge; <= 0 disables.
  double high_cutoff_hz = 0.1;    ///< Passband upper edge; <= 0 disables.
  double transition_width_hz = 0.002;  ///< Raised-cosine roll-off width.
  double tr_seconds = 0.72;       ///< Sampling interval.
};

/// Zero-phase band-pass of a single series. The DC bin is always removed
/// when low_cutoff_hz > 0. Returns InvalidArgument for empty/non-finite
/// input or cutoffs above Nyquist.
Result<std::vector<double>> BandPassFilter(const std::vector<double>& x,
                                           const BandPassConfig& config);

/// High-pass with the given cutoff (implemented as a band-pass with the
/// upper edge disabled): the paper's task-fMRI detrending filter
/// (cutoff 1/200 Hz).
Result<std::vector<double>> HighPassFilter(const std::vector<double>& x,
                                           double cutoff_hz,
                                           double tr_seconds);

/// Removes the least-squares polynomial of the given degree (0 = demean,
/// 1 = linear detrend, ...). Degree must be < x.size().
Result<std::vector<double>> DetrendPolynomial(const std::vector<double>& x,
                                              int degree);

/// Linear detrend (degree-1 polynomial removal).
Result<std::vector<double>> DetrendLinear(const std::vector<double>& x);

/// Regresses `confound` (and an intercept) out of x, returning the
/// residual. This is the paper's global-signal-regression primitive.
Result<std::vector<double>> RegressOut(const std::vector<double>& x,
                                       const std::vector<double>& confound);

/// Regresses several confounds (plus intercept) out of x.
Result<std::vector<double>> RegressOutMany(
    const std::vector<double>& x,
    const std::vector<std::vector<double>>& confounds);

/// Mean power of x in [low_hz, high_hz), via the periodogram. Used by
/// tests to verify filter passbands and by the simulator to calibrate
/// drift. Returns 0 for empty input.
double BandPower(const std::vector<double>& x, double low_hz, double high_hz,
                 double tr_seconds);

}  // namespace neuroprint::signal

#endif  // NEUROPRINT_SIGNAL_FILTERS_H_
