#include "signal/spectral.h"

#include <cmath>
#include <numbers>

#include "signal/fft.h"
#include "util/string_util.h"

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

Result<std::vector<double>> MakeWindow(WindowKind kind, std::size_t n) {
  if (n == 0) return Status::InvalidArgument("MakeWindow: empty window");
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 * (1.0 - std::cos(2.0 * kPi * static_cast<double>(i) / denom));
      }
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
  }
  return w;
}

double PowerSpectrum::BandPower(double low_hz, double high_hz) const {
  double total = 0.0;
  for (std::size_t k = 0; k < frequency_hz.size(); ++k) {
    if (frequency_hz[k] >= low_hz && frequency_hz[k] < high_hz) {
      total += power[k];
    }
  }
  return total;
}

Result<PowerSpectrum> WelchPsd(const std::vector<double>& x,
                               const WelchOptions& options) {
  const std::size_t n = x.size();
  const std::size_t seg = options.segment_length;
  if (seg < 2) {
    return Status::InvalidArgument("WelchPsd: segment_length must be >= 2");
  }
  if (n < seg) {
    return Status::InvalidArgument(StrFormat(
        "WelchPsd: series length %zu shorter than segment %zu", n, seg));
  }
  if (options.overlap < 0.0 || options.overlap > 0.95) {
    return Status::InvalidArgument("WelchPsd: overlap must be in [0, 0.95]");
  }
  if (options.tr_seconds <= 0.0) {
    return Status::InvalidArgument("WelchPsd: TR must be positive");
  }
  for (double v : x) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("WelchPsd: non-finite input");
    }
  }

  auto window_result = MakeWindow(options.window, seg);
  if (!window_result.ok()) return window_result.status();
  const std::vector<double>& window = *window_result;
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - options.overlap))));

  const std::size_t bins = seg / 2 + 1;
  PowerSpectrum spectrum;
  spectrum.frequency_hz.resize(bins);
  spectrum.power.assign(bins, 0.0);
  const double df =
      1.0 / (options.tr_seconds * static_cast<double>(seg));
  for (std::size_t k = 0; k < bins; ++k) {
    spectrum.frequency_hz[k] = static_cast<double>(k) * df;
  }

  std::size_t segments = 0;
  std::vector<double> buffer(seg);
  for (std::size_t start = 0; start + seg <= n; start += hop) {
    // Demean and window the segment.
    double mean = 0.0;
    for (std::size_t i = 0; i < seg; ++i) mean += x[start + i];
    mean /= static_cast<double>(seg);
    for (std::size_t i = 0; i < seg; ++i) {
      buffer[i] = (x[start + i] - mean) * window[i];
    }
    const ComplexVector fft = RealFft(buffer);
    for (std::size_t k = 0; k < bins; ++k) {
      // One-sided: double the interior bins.
      const double scale = (k == 0 || 2 * k == seg) ? 1.0 : 2.0;
      spectrum.power[k] += scale * std::norm(fft[k]);
    }
    ++segments;
  }
  // Normalize by segment count, window energy, and segment length, so
  // the total power approximates the signal variance (discrete Parseval:
  // sum_k |X_k|^2 = seg * sum_i x_i^2).
  const double norm =
      1.0 / (static_cast<double>(segments) * window_power *
             static_cast<double>(seg));
  for (double& p : spectrum.power) p *= norm;
  return spectrum;
}

}  // namespace neuroprint::signal
