// Temporal resampling of one series onto shifted sample times — the
// primitive behind slice-time correction (each axial slice of an fMRI
// volume is acquired at a slightly different moment within the TR; slice
// timing shifts every slice's series onto a common time grid).

#ifndef NEUROPRINT_SIGNAL_RESAMPLE_H_
#define NEUROPRINT_SIGNAL_RESAMPLE_H_

#include <vector>

#include "util/status.h"

namespace neuroprint::signal {

/// Interpolation kernels for ShiftSeries.
enum class InterpKind {
  kLinear,        ///< Piecewise-linear; cheap, slight high-frequency loss.
  kWindowedSinc,  ///< Lanczos-windowed sinc (a = 4); near-ideal for smooth series.
};

/// Evaluates the series at t = i + shift (in samples) for every index i,
/// clamping at the boundaries. `shift` in (-1, 1) covers slice timing.
Result<std::vector<double>> ShiftSeries(const std::vector<double>& x,
                                        double shift, InterpKind kind);

/// Resamples `x` (sampled at interval tr_in) onto a grid with interval
/// tr_out, covering the same time span.
Result<std::vector<double>> ResampleSeries(const std::vector<double>& x,
                                           double tr_in, double tr_out,
                                           InterpKind kind);

}  // namespace neuroprint::signal

#endif  // NEUROPRINT_SIGNAL_RESAMPLE_H_
