#include "sim/voxel_render.h"

#include <algorithm>
#include <cmath>

#include "image/resample.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace neuroprint::sim {

Result<image::Volume4D> RenderVoxelRun(const atlas::Atlas& atlas,
                                       const linalg::Matrix& region_series,
                                       const VoxelRenderConfig& config,
                                       Rng& rng) {
  NP_TRACE_SCOPE("sim.render_voxels");
  if (atlas.empty()) {
    return Status::InvalidArgument("RenderVoxelRun: empty atlas");
  }
  if (region_series.rows() != atlas.num_regions()) {
    return Status::InvalidArgument(StrFormat(
        "RenderVoxelRun: %zu series rows for %zu atlas regions",
        region_series.rows(), atlas.num_regions()));
  }
  const std::size_t frames = region_series.cols();
  if (frames == 0) {
    return Status::InvalidArgument("RenderVoxelRun: no frames");
  }

  image::Volume4D run(atlas.nx(), atlas.ny(), atlas.nz(), frames);
  run.spacing().tr_seconds = config.tr_seconds;

  // Fixed anatomical baseline per voxel.
  std::vector<float> anatomy(run.voxels_per_volume(), 0.0f);
  {
    std::size_t i = 0;
    for (std::size_t z = 0; z < atlas.nz(); ++z) {
      for (std::size_t y = 0; y < atlas.ny(); ++y) {
        for (std::size_t x = 0; x < atlas.nx(); ++x, ++i) {
          if (atlas.label(x, y, z) != atlas::kBackground) {
            anatomy[i] = static_cast<float>(
                config.baseline_intensity +
                rng.Gaussian(0.0, config.anatomy_noise));
          }
        }
      }
    }
  }

  // Slow scanner drift shared across voxels: quadratic with random shape.
  const double drift_a = rng.Gaussian(0.0, 1.0);
  const double drift_b = rng.Gaussian(0.0, 1.0);
  std::vector<double> drift(frames, 0.0);
  for (std::size_t t = 0; t < frames; ++t) {
    const double u =
        frames > 1 ? 2.0 * static_cast<double>(t) / static_cast<double>(frames - 1) - 1.0
                   : 0.0;
    drift[t] = config.drift_amplitude * (drift_a * u + drift_b * u * u);
  }

  // With slice timing planted, slice z sees the signal evaluated at
  // t + f_z (it is acquired f_z of a TR late); one shifted copy of the
  // region series per slice.
  std::vector<linalg::Matrix> per_slice_series;
  if (config.plant_slice_timing) {
    const std::vector<double> fractions =
        preprocess::SliceAcquisitionFractions(atlas.nz(), config.slice_order);
    per_slice_series.reserve(atlas.nz());
    for (std::size_t z = 0; z < atlas.nz(); ++z) {
      linalg::Matrix shifted(region_series.rows(), frames);
      for (std::size_t r = 0; r < region_series.rows(); ++r) {
        auto row = signal::ShiftSeries(region_series.RowCopy(r), fractions[z],
                                       signal::InterpKind::kWindowedSinc);
        if (!row.ok()) return row.status();
        shifted.SetRow(r, *row);
      }
      per_slice_series.push_back(std::move(shifted));
    }
  }

  const std::vector<std::int32_t>& labels = atlas.flat();
  for (std::size_t t = 0; t < frames; ++t) {
    float* vol = run.VolumePtr(t);
    std::size_t i = 0;
    for (std::size_t z = 0; z < atlas.nz(); ++z) {
      const linalg::Matrix& slice_series =
          config.plant_slice_timing ? per_slice_series[z] : region_series;
      for (std::size_t y = 0; y < atlas.ny(); ++y) {
        for (std::size_t x = 0; x < atlas.nx(); ++x, ++i) {
          if (labels[i] == atlas::kBackground) {
            vol[i] = 0.0f;
            continue;
          }
          const double signal =
              slice_series(static_cast<std::size_t>(labels[i]) - 1, t);
          vol[i] = static_cast<float>(
              static_cast<double>(anatomy[i]) +
              config.signal_scale * signal + drift[t] +
              rng.Gaussian(0.0, config.voxel_noise));
        }
      }
    }
  }

  // Head motion: a bounded random walk over translations, applied to each
  // frame after the first.
  if (config.motion_step > 0.0) {
    image::RigidTransform pose;
    for (std::size_t t = 1; t < frames; ++t) {
      pose.translate_x = std::clamp(
          pose.translate_x + rng.Gaussian(0.0, config.motion_step), -1.5, 1.5);
      pose.translate_y = std::clamp(
          pose.translate_y + rng.Gaussian(0.0, config.motion_step), -1.5, 1.5);
      pose.translate_z = std::clamp(
          pose.translate_z + rng.Gaussian(0.0, config.motion_step), -1.5, 1.5);
      auto moved = image::ResampleRigid(run.ExtractVolume(t), pose);
      if (!moved.ok()) return moved.status();
      run.SetVolume(t, *moved);
    }
  }
  return run;
}

}  // namespace neuroprint::sim
