// The eight HCP scan conditions (resting state plus the seven tasks of
// Barch et al. 2013) and their simulation properties.

#ifndef NEUROPRINT_SIM_TASK_H_
#define NEUROPRINT_SIM_TASK_H_

#include <array>
#include <cstddef>
#include <string>

namespace neuroprint::sim {

enum class TaskType : int {
  kRest = 0,
  kWorkingMemory = 1,
  kGambling = 2,
  kMotor = 3,
  kLanguage = 4,
  kSocial = 5,
  kRelational = 6,
  kEmotion = 7,
};

inline constexpr std::array<TaskType, 8> kAllTasks = {
    TaskType::kRest,     TaskType::kWorkingMemory, TaskType::kGambling,
    TaskType::kMotor,    TaskType::kLanguage,      TaskType::kSocial,
    TaskType::kRelational, TaskType::kEmotion,
};

/// "REST", "WM", "GAMBLING", ... (the paper's labels).
const char* TaskName(TaskType task);

/// Per-condition simulation properties. The two strengths are the SNR
/// knobs calibrated against the paper's reported accuracies: the paper
/// finds resting-state scans most identifying, language/relational strong,
/// social moderate, and motor/working-memory weak (Figure 5); and every
/// task's scans cluster tightly by task under t-SNE (Figure 6).
struct TaskProperties {
  /// How strongly the subject's identity component expresses in scans of
  /// this condition.
  double signature_strength = 0.3;
  /// How strongly the condition's shared activation component expresses
  /// (what makes scans cluster by task).
  double task_strength = 0.6;
  /// Frames per scan (scaled-down analogues of the HCP run lengths).
  std::size_t num_frames = 200;
};

TaskProperties DefaultTaskProperties(TaskType task);

/// True for the four tasks HCP publishes accuracy metrics for (Table 1).
bool HasPerformanceMetric(TaskType task);

}  // namespace neuroprint::sim

#endif  // NEUROPRINT_SIM_TASK_H_
