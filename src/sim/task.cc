#include "sim/task.h"

namespace neuroprint::sim {

const char* TaskName(TaskType task) {
  switch (task) {
    case TaskType::kRest:
      return "REST";
    case TaskType::kWorkingMemory:
      return "WM";
    case TaskType::kGambling:
      return "GAMBLING";
    case TaskType::kMotor:
      return "MOTOR";
    case TaskType::kLanguage:
      return "LANGUAGE";
    case TaskType::kSocial:
      return "SOCIAL";
    case TaskType::kRelational:
      return "RELATIONAL";
    case TaskType::kEmotion:
      return "EMOTION";
  }
  return "UNKNOWN";
}

TaskProperties DefaultTaskProperties(TaskType task) {
  // signature_strength ordering mirrors Figure 5's diagonal:
  // REST > LANGUAGE ~ RELATIONAL > SOCIAL > EMOTION ~ GAMBLING >> WM ~ MOTOR.
  // Frame counts are scaled-down analogues of the HCP run lengths
  // (rest 1200 frames, tasks 176-405).
  switch (task) {
    case TaskType::kRest:
      return {0.55, 0.40, 300};
    case TaskType::kWorkingMemory:
      return {0.10, 0.85, 150};
    case TaskType::kGambling:
      return {0.37, 0.60, 120};
    case TaskType::kMotor:
      return {0.08, 0.90, 110};
    case TaskType::kLanguage:
      return {0.46, 0.55, 180};
    case TaskType::kSocial:
      return {0.47, 0.65, 130};
    case TaskType::kRelational:
      return {0.50, 0.60, 140};
    case TaskType::kEmotion:
      return {0.42, 0.70, 110};
  }
  return {};
}

bool HasPerformanceMetric(TaskType task) {
  switch (task) {
    case TaskType::kLanguage:
    case TaskType::kEmotion:
    case TaskType::kRelational:
    case TaskType::kWorkingMemory:
      return true;
    default:
      return false;
  }
}

}  // namespace neuroprint::sim
