#include "sim/hemodynamics.h"

#include <cmath>

namespace neuroprint::sim {
namespace {

// Unnormalized gamma-density shape t^(k-1) e^(-t/theta).
double GammaShape(double t, double shape, double scale) {
  if (t <= 0.0) return 0.0;
  return std::pow(t / scale, shape - 1.0) * std::exp(-t / scale);
}

}  // namespace

double DoubleGammaHrf(double t_seconds) {
  // SPM canonical parameters: response peak ~5 s (shape 6, scale 1),
  // undershoot ~15 s (shape 16, scale 1), undershoot ratio 1/6.
  constexpr double kPeakShape = 6.0;
  constexpr double kUndershootShape = 16.0;
  constexpr double kScale = 1.0;
  constexpr double kUndershootRatio = 1.0 / 6.0;
  if (t_seconds <= 0.0) return 0.0;
  // Normalize each gamma by its mode value so the difference peaks near 1.
  const double peak_mode = GammaShape((kPeakShape - 1.0) * kScale, kPeakShape, kScale);
  const double under_mode =
      GammaShape((kUndershootShape - 1.0) * kScale, kUndershootShape, kScale);
  return GammaShape(t_seconds, kPeakShape, kScale) / peak_mode -
         kUndershootRatio * GammaShape(t_seconds, kUndershootShape, kScale) /
             under_mode;
}

Result<std::vector<double>> HrfKernel(double tr_seconds,
                                      double duration_seconds) {
  if (tr_seconds <= 0.0 || duration_seconds <= 0.0) {
    return Status::InvalidArgument("HrfKernel: intervals must be positive");
  }
  const std::size_t samples =
      static_cast<std::size_t>(duration_seconds / tr_seconds) + 1;
  std::vector<double> kernel(samples);
  double peak = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    kernel[i] = DoubleGammaHrf(static_cast<double>(i) * tr_seconds);
    peak = std::max(peak, kernel[i]);
  }
  if (peak <= 0.0) {
    return Status::FailedPrecondition(
        "HrfKernel: kernel degenerate (TR too coarse for the HRF)");
  }
  for (double& v : kernel) v /= peak;
  return kernel;
}

Result<std::vector<double>> BlockDesign(std::size_t frames,
                                        std::size_t block_frames,
                                        std::size_t rest_frames) {
  if (frames == 0 || block_frames == 0) {
    return Status::InvalidArgument("BlockDesign: empty design");
  }
  std::vector<double> design(frames, 0.0);
  const std::size_t period = block_frames + rest_frames;
  for (std::size_t t = 0; t < frames; ++t) {
    design[t] = (t % period) >= rest_frames ? 1.0 : 0.0;
  }
  return design;
}

Result<std::vector<double>> ConvolveDesign(const std::vector<double>& design,
                                           const std::vector<double>& kernel) {
  if (design.empty() || kernel.empty()) {
    return Status::InvalidArgument("ConvolveDesign: empty input");
  }
  std::vector<double> out(design.size(), 0.0);
  for (std::size_t t = 0; t < design.size(); ++t) {
    double acc = 0.0;
    const std::size_t kmax = std::min(t + 1, kernel.size());
    for (std::size_t k = 0; k < kmax; ++k) {
      acc += kernel[k] * design[t - k];
    }
    out[t] = acc;
  }
  return out;
}

}  // namespace neuroprint::sim
