#include "sim/cohort.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "connectome/connectome.h"
#include "linalg/cholesky.h"
#include "sim/hemodynamics.h"
#include "linalg/vector_ops.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace neuroprint::sim {
namespace {

// SplitMix64 finalizer: decorrelates derived seeds.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ScanSeed(std::uint64_t base, std::size_t subject, TaskType task,
                       Encoding encoding, std::uint64_t salt) {
  std::uint64_t s = MixSeed(base ^ salt);
  s = MixSeed(s ^ (static_cast<std::uint64_t>(subject) + 1));
  s = MixSeed(s ^ (static_cast<std::uint64_t>(static_cast<int>(task)) + 101));
  s = MixSeed(s ^
              (static_cast<std::uint64_t>(static_cast<int>(encoding)) + 977));
  return s;
}

// Random low-rank PSD component G G^T / rank: diagonal expectation 1, so
// mixture weights read as relative variance contributions.
linalg::Matrix RandomPsdComponent(std::size_t regions, std::size_t rank,
                                  Rng& rng) {
  linalg::Matrix g(regions, rank);
  for (std::size_t i = 0; i < regions; ++i) {
    for (std::size_t j = 0; j < rank; ++j) g(i, j) = rng.Gaussian();
  }
  linalg::Matrix m = linalg::MatMulT(g, g);
  m *= 1.0 / static_cast<double>(rank);
  return m;
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  return encoding == Encoding::kLeftRight ? "LR" : "RL";
}

CohortConfig HcpLikeConfig(std::uint64_t seed) {
  CohortConfig config;
  config.seed = seed;
  return config;
}

CohortConfig AdhdLikeConfig(std::uint64_t seed) {
  CohortConfig config;
  config.num_subjects = 60;
  config.num_regions = 116;
  config.frames_override = 150;  // Shorter paediatric scans.
  config.tr_seconds = 2.0;       // Typical ADHD-200 site TR.
  config.signature_scale = 1.5;  // AAL2's coarse parcels average more
                                 // voxels per region, boosting edge SNR.
  config.session_noise = 0.20;
  config.measurement_noise = 0.32;
  // 30 controls + three ADHD subtypes (combined inattentive/hyperactive,
  // hyperactive-impulsive, inattentive), echoing ADHD-200's label set.
  config.group_sizes = {30, 12, 8, 10};
  config.group_strength = 0.25;
  config.seed = seed;
  return config;
}

Result<CohortSimulator> CohortSimulator::Create(const CohortConfig& config) {
  if (config.num_subjects < 2) {
    return Status::InvalidArgument("CohortConfig: need at least 2 subjects");
  }
  if (config.num_regions < 4) {
    return Status::InvalidArgument("CohortConfig: need at least 4 regions");
  }
  if (config.component_rank == 0) {
    return Status::InvalidArgument("CohortConfig: component_rank must be > 0");
  }
  if (config.idiosyncratic_variance <= 0.0) {
    return Status::InvalidArgument(
        "CohortConfig: idiosyncratic_variance must be positive (it keeps "
        "the covariance positive definite)");
  }
  if (!config.group_sizes.empty()) {
    std::size_t total = 0;
    for (std::size_t s : config.group_sizes) total += s;
    if (total != config.num_subjects) {
      return Status::InvalidArgument(StrFormat(
          "CohortConfig: group sizes sum to %zu but num_subjects is %zu",
          total, config.num_subjects));
    }
  }

  CohortSimulator sim;
  sim.config_ = config;

  sim.subject_ids_.reserve(config.num_subjects);
  for (std::size_t s = 0; s < config.num_subjects; ++s) {
    sim.subject_ids_.push_back(StrFormat("S%04zu", s + 1));
  }

  sim.group_of_.assign(config.num_subjects, 0);
  if (!config.group_sizes.empty()) {
    std::size_t subject = 0;
    for (std::size_t g = 0; g < config.group_sizes.size(); ++g) {
      for (std::size_t i = 0; i < config.group_sizes[g]; ++i) {
        sim.group_of_[subject++] = g;
      }
    }
  }

  // Shared components.
  Rng base_rng(MixSeed(config.seed ^ 0xc0507eULL));
  sim.baseline_ =
      RandomPsdComponent(config.num_regions, config.component_rank * 3, base_rng);

  sim.task_comp_.resize(kAllTasks.size());
  sim.perf_comp_.resize(kAllTasks.size());
  sim.task_loading_.resize(kAllTasks.size());
  for (std::size_t k = 0; k < kAllTasks.size(); ++k) {
    Rng task_rng(MixSeed(config.seed ^ (0x7a5c ^ (k * 131))));
    sim.task_comp_[k] =
        RandomPsdComponent(config.num_regions, config.component_rank, task_rng);
    sim.perf_comp_[k] =
        RandomPsdComponent(config.num_regions,
                           std::max<std::size_t>(2, config.component_rank / 2),
                           task_rng);
    // Evoked activation loading: localized to ~20% of regions (task
    // activations are confined to the lobes serving the task).
    linalg::Vector loading(config.num_regions, 0.0);
    for (double& v : loading) {
      if (task_rng.Uniform() < 0.2) v = std::fabs(task_rng.Gaussian());
    }
    sim.task_loading_[k] = std::move(loading);
  }
  // Gambling's activation pattern partially shares resting-state structure
  // (the paper observes rest scans misclassified as gambling, never the
  // other tasks).
  {
    const std::size_t rest = static_cast<std::size_t>(TaskType::kRest);
    const std::size_t gambling = static_cast<std::size_t>(TaskType::kGambling);
    linalg::Matrix blended = sim.task_comp_[gambling];
    blended *= 0.5;
    linalg::Matrix rest_part = sim.task_comp_[rest];
    rest_part *= 0.5;
    blended += rest_part;
    sim.task_comp_[gambling] = std::move(blended);
  }

  sim.signature_.resize(config.num_subjects);
  sim.skill_.resize(config.num_subjects);
  for (std::size_t s = 0; s < config.num_subjects; ++s) {
    Rng subject_rng(MixSeed(config.seed ^ (0x51d0 + s * 2654435761ULL)));
    sim.signature_[s] =
        RandomPsdComponent(config.num_regions, config.component_rank, subject_rng);
    sim.skill_[s] = std::clamp(subject_rng.Gaussian(), -2.0, 2.0);
  }

  const std::size_t num_groups =
      config.group_sizes.empty() ? 1 : config.group_sizes.size();
  sim.group_comp_.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    Rng group_rng(MixSeed(config.seed ^ (0x96f1 + g * 40503ULL)));
    sim.group_comp_[g] =
        RandomPsdComponent(config.num_regions, config.component_rank, group_rng);
  }
  return sim;
}

std::size_t CohortSimulator::GroupOf(std::size_t subject) const {
  NP_CHECK_LT(subject, group_of_.size());
  return group_of_[subject];
}

double CohortSimulator::PerformanceScore(std::size_t subject,
                                         TaskType task) const {
  NP_CHECK_LT(subject, skill_.size());
  // Task-specific offset plus the latent skill: percent-correct in
  // [50, 100], the range of the HCP accuracy metrics.
  const double base = 78.0 + 2.0 * static_cast<double>(static_cast<int>(task));
  return std::clamp(base + 7.5 * skill_[subject], 50.0, 100.0);
}

linalg::Matrix CohortSimulator::StableCovariance(std::size_t subject,
                                                 TaskType task) const {
  const std::size_t k = static_cast<std::size_t>(static_cast<int>(task));
  const TaskProperties props = DefaultTaskProperties(task);
  const double a_k = config_.task_scale * props.task_strength;
  const double b_k = config_.signature_scale * props.signature_strength;

  linalg::Matrix sigma =
      linalg::Matrix::Identity(config_.num_regions);
  sigma *= config_.idiosyncratic_variance;

  linalg::Matrix term = baseline_;
  term *= config_.baseline_strength;
  sigma += term;

  // The subject's latent skill modulates how strongly they engage the
  // task network (better performers activate it more coherently) — a
  // coherent shift across all task-component edges, which is the signal
  // Table 1's regression recovers. The multiplier stays positive for
  // |skill| <= 2, keeping Sigma PSD.
  const double engagement =
      1.0 + 0.25 * config_.performance_coupling * skill_[subject];
  term = task_comp_[k];
  term *= a_k * std::max(0.05, engagement);
  sigma += term;

  term = signature_[subject];
  term *= b_k;
  sigma += term;

  if (config_.performance_coupling > 0.0) {
    // Additive behaviour-linked component on its own edge set;
    // (2 + skill) / 2 stays positive for |skill| <= 2, keeping Sigma PSD.
    term = perf_comp_[k];
    term *= config_.performance_coupling * (2.0 + skill_[subject]) * 0.5;
    sigma += term;
  }

  if (config_.group_strength > 0.0 && !group_comp_.empty()) {
    term = group_comp_[group_of_[subject]];
    term *= config_.group_strength;
    sigma += term;
  }
  return sigma;
}

Result<linalg::Matrix> CohortSimulator::SimulateRegionSeries(
    std::size_t subject, TaskType task, Encoding encoding) const {
  NP_TRACE_SCOPE("cohort.simulate_scan");
  if (subject >= config_.num_subjects) {
    return Status::OutOfRange(
        StrFormat("SimulateRegionSeries: subject %zu out of %zu", subject,
                  config_.num_subjects));
  }
  const TaskProperties props = DefaultTaskProperties(task);
  const std::size_t frames = config_.frames_override > 0
                                 ? config_.frames_override
                                 : props.num_frames;

  linalg::Matrix sigma = StableCovariance(subject, task);

  // Session-specific component: differs between the L-R and R-L scans, so
  // intra-subject similarity is high but not trivially 1.
  Rng scan_rng(ScanSeed(config_.seed, subject, task, encoding, 0xabcdef));
  if (config_.session_noise > 0.0) {
    linalg::Matrix session = RandomPsdComponent(
        config_.num_regions, config_.component_rank, scan_rng);
    session *= config_.session_noise;
    sigma += session;
  }

  auto chol = linalg::CholeskyDecomposeWithJitter(sigma, 1e-9);
  if (!chol.ok()) return chol.status();

  // X = L Z with Z ~ N(0, I), plus white measurement noise.
  linalg::Matrix z(config_.num_regions, frames);
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t t = 0; t < frames; ++t) z(i, t) = scan_rng.Gaussian();
  }
  linalg::Matrix series = linalg::MatMul(*chol, z);

  // Evoked stimulus-locked response for task scans: a block design
  // convolved with the canonical HRF, projected onto the task's localized
  // region loading. Shared across subjects (the stimulus schedule is),
  // with the subject's engagement modulating the amplitude.
  if (config_.evoked_amplitude > 0.0 && task != TaskType::kRest) {
    const std::size_t block_frames = std::max<std::size_t>(
        1, static_cast<std::size_t>(15.0 / config_.tr_seconds));
    auto design = BlockDesign(frames, block_frames, block_frames);
    auto kernel = HrfKernel(config_.tr_seconds);
    if (design.ok() && kernel.ok()) {
      auto bold = ConvolveDesign(*design, *kernel);
      if (bold.ok()) {
        const double engagement =
            1.0 + 0.25 * config_.performance_coupling * skill_[subject];
        const std::size_t k = static_cast<std::size_t>(static_cast<int>(task));
        for (std::size_t r = 0; r < config_.num_regions; ++r) {
          const double gain = config_.evoked_amplitude *
                              std::max(0.05, engagement) *
                              task_loading_[k][r];
          if (gain == 0.0) continue;
          double* row = series.RowPtr(r);
          for (std::size_t t = 0; t < frames; ++t) {
            row[t] += gain * (*bold)[t];
          }
        }
      }
    }
  }

  if (config_.measurement_noise > 0.0) {
    for (std::size_t i = 0; i < series.rows(); ++i) {
      double* row = series.RowPtr(i);
      for (std::size_t t = 0; t < frames; ++t) {
        row[t] += scan_rng.Gaussian(0.0, config_.measurement_noise);
      }
    }
  }

  // Keyed injection point standing in for archival-data damage: `error`
  // models an unreadable scan (e.g. truncated gzip), `nan` a fully
  // motion-scrubbed run, `corrupt` bit rot in the decoded series. Keyed
  // by subject so schedules are deterministic under parallel synthesis.
  if (fault::Enabled()) {
    const fault::Injection injection =
        fault::Hit("cohort.simulate_scan", subject);
    switch (injection.action) {
      case fault::Action::kNone:
        break;
      case fault::Action::kError:
        return injection.status;
      case fault::Action::kNaN:
        std::fill(series.data(), series.data() + series.rows() * series.cols(),
                  std::numeric_limits<double>::quiet_NaN());
        break;
      case fault::Action::kCorrupt:
        fault::ScrambleBytes(injection.seed, series.data(),
                             series.rows() * series.cols() * sizeof(double));
        break;
      case fault::Action::kTorn:
      case fault::Action::kCrash:
        return Status::Internal(
            std::string("fault point 'cohort.simulate_scan' does not support "
                        "action '") +
            fault::ActionName(injection.action) + "'");
    }
  }
  return series;
}

Result<connectome::GroupMatrix> CohortSimulator::BuildGroupMatrix(
    TaskType task, Encoding encoding, double multisite_noise_fraction) const {
  return BuildGroupMatrixWithReport(task, encoding, multisite_noise_fraction,
                                    nullptr);
}

Result<connectome::GroupMatrix> CohortSimulator::BuildGroupMatrixWithReport(
    TaskType task, Encoding encoding, double multisite_noise_fraction,
    BatchReport* report) const {
  fault::ScopedSchedule fault_schedule(config_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("cohort.build_group_matrix");
  metrics::Count("cohort.builds", 1);
  metrics::Count("cohort.scans", config_.num_subjects);

  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  report->attempted = config_.num_subjects;

  // Every scan derives its own generator from ScanSeed, so subjects
  // synthesize independently in parallel, each writing its own column.
  // Each subject also records the stage it last entered into its own
  // slot, so a failure can be attributed without cross-item coupling.
  std::vector<linalg::Vector> columns(config_.num_subjects);
  std::vector<const char*> stages(config_.num_subjects, "simulate");
  std::vector<std::pair<std::size_t, Status>> errors;
  ParallelForStatusCollect(
      config_.parallel, 0, config_.num_subjects, 1,
      [&](std::size_t s) -> Status {
        NP_TRACE_SCOPE("cohort.scan");
        stages[s] = "simulate";
        auto series = SimulateRegionSeries(s, task, encoding);
        if (!series.ok()) return series.status();
        // Injected NaN / corrupt scans surface here rather than as a NaN
        // column in the group matrix (BuildConnectome would also reject
        // non-finite input, but with a less specific stage).
        stages[s] = "validate";
        if (!series->AllFinite()) {
          return Status::CorruptData(StrFormat(
              "scan for subject %s has non-finite samples",
              subject_ids_[s].c_str()));
        }
        if (multisite_noise_fraction > 0.0) {
          stages[s] = "multisite";
          Rng site_rng(ScanSeed(config_.seed, s, task, encoding, 0x517eULL));
          NP_RETURN_IF_ERROR(
              AddMultisiteNoise(*series, multisite_noise_fraction, site_rng));
          NP_RETURN_IF_ERROR(
              AddSiteEffect(*series, multisite_noise_fraction, site_rng));
        }
        stages[s] = "connectome";
        auto conn = connectome::BuildConnectome(*series, config_.parallel);
        if (!conn.ok()) return conn.status();
        stages[s] = "vectorize";
        auto features = connectome::VectorizeUpperTriangle(*conn);
        if (!features.ok()) return features.status();
        columns[s] = std::move(features).value();
        return Status::OK();
      },
      &errors);

  for (auto& [index, status] : errors) {
    BatchItemReport item;
    item.index = index;
    item.id = subject_ids_[index];
    item.stage = stages[index];
    item.status = std::move(status);
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(config_.failure_policy, *report));
  if (report->failed.empty()) {
    return connectome::GroupMatrix::FromFeatureColumns(columns, subject_ids_);
  }
  metrics::Count("batch.subjects_skipped", report->failed.size());

  std::vector<linalg::Vector> surviving_columns;
  std::vector<std::string> surviving_ids;
  surviving_columns.reserve(report->num_succeeded());
  surviving_ids.reserve(report->num_succeeded());
  std::size_t next_failed = 0;
  for (std::size_t s = 0; s < config_.num_subjects; ++s) {
    if (next_failed < report->failed.size() &&
        report->failed[next_failed].index == s) {
      ++next_failed;
      continue;
    }
    surviving_columns.push_back(std::move(columns[s]));
    surviving_ids.push_back(subject_ids_[s]);
  }
  return connectome::GroupMatrix::FromFeatureColumns(surviving_columns,
                                                     std::move(surviving_ids));
}

Status AddMultisiteNoise(linalg::Matrix& series, double variance_fraction,
                         Rng& rng) {
  if (variance_fraction < 0.0) {
    return Status::InvalidArgument(
        "AddMultisiteNoise: negative variance fraction");
  }
  if (variance_fraction == 0.0) return Status::OK();
  for (std::size_t i = 0; i < series.rows(); ++i) {
    linalg::Vector row = series.RowCopy(i);
    const double mean = linalg::Mean(row);
    const double sd = std::sqrt(variance_fraction * linalg::Variance(row));
    double* data = series.RowPtr(i);
    for (std::size_t t = 0; t < series.cols(); ++t) {
      data[t] += rng.Gaussian(mean, sd);
    }
  }
  return Status::OK();
}

Status AddSiteEffect(linalg::Matrix& series, double variance_fraction,
                     Rng& rng) {
  if (variance_fraction < 0.0) {
    return Status::InvalidArgument("AddSiteEffect: negative variance fraction");
  }
  if (variance_fraction == 0.0 || series.cols() == 0) return Status::OK();

  // Site gain couples proportionally to the noise *amplitude* (sqrt of the
  // variance fraction), spread over a few independent site signals — a
  // low-rank perturbation of the scan covariance.
  constexpr std::size_t kSiteComponents = 4;
  constexpr double kSiteCoupling = 0.45;  // Calibrated against Table 2.
  const double per_component_variance =
      kSiteCoupling * std::sqrt(std::sqrt(variance_fraction)) /
      static_cast<double>(kSiteComponents);

  std::vector<linalg::Vector> site_signals(kSiteComponents);
  for (auto& signal : site_signals) {
    signal.resize(series.cols());
    for (double& v : signal) v = rng.Gaussian();
  }

  for (std::size_t i = 0; i < series.rows(); ++i) {
    linalg::Vector row = series.RowCopy(i);
    const double base_sd =
        std::sqrt(per_component_variance * linalg::Variance(row));
    double* data = series.RowPtr(i);
    for (const auto& signal : site_signals) {
      const double amplitude = rng.Gaussian() * base_sd;
      for (std::size_t t = 0; t < series.cols(); ++t) {
        data[t] += amplitude * signal[t];
      }
    }
  }
  return Status::OK();
}

}  // namespace neuroprint::sim
