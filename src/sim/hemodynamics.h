// Haemodynamic response modelling: the canonical double-gamma HRF and
// block task designs, used to plant evoked task activation in simulated
// task scans. The paper notes that "task driven brain activities are more
// complex than spontaneous firings" and that task activations are
// localized and time-locked to the stimulus blocks; this module provides
// that structure (the evoked-response ablation bench quantifies its
// effect on identifiability).

#ifndef NEUROPRINT_SIM_HEMODYNAMICS_H_
#define NEUROPRINT_SIM_HEMODYNAMICS_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace neuroprint::sim {

/// Canonical (SPM-style) double-gamma haemodynamic response at time t
/// seconds after a unit neural impulse: a gamma peak near 5 s minus a
/// scaled gamma undershoot near 15 s. Zero for t < 0.
double DoubleGammaHrf(double t_seconds);

/// The HRF sampled at one value per frame (interval tr_seconds), covering
/// `duration_seconds`, normalized to peak 1.
Result<std::vector<double>> HrfKernel(double tr_seconds,
                                      double duration_seconds = 32.0);

/// Alternating off/on boxcar: `rest_frames` of 0 then `block_frames` of 1,
/// repeated to cover `frames` (task designs in the HCP protocol).
Result<std::vector<double>> BlockDesign(std::size_t frames,
                                        std::size_t block_frames,
                                        std::size_t rest_frames);

/// Linear (causal) convolution of a stimulus design with a kernel,
/// truncated to the design's length — the predicted BOLD time course.
Result<std::vector<double>> ConvolveDesign(const std::vector<double>& design,
                                           const std::vector<double>& kernel);

}  // namespace neuroprint::sim

#endif  // NEUROPRINT_SIM_HEMODYNAMICS_H_
