// Generative cohort simulator — the data substrate substituting for the
// restricted HCP and ADHD-200 datasets (see DESIGN.md, Section 1).
//
// Model. Each scan's region time series are drawn from a zero-mean
// Gaussian process with covariance
//
//   Sigma(s, k, e) =  delta I
//                   + w_base  * C0           (population-shared baseline)
//                   + a_k     * T_k          (task activation component)
//                   + b_k     * S_s          (subject identity signature)
//                   + w_skill * skill * P_k  (behaviour-linked component)
//                   + w_sess  * E_{s,k,e}    (session-specific component)
//
// where every component is a normalized random low-rank PSD matrix. The
// identity signature S_s is the invariant the attack exploits: it is the
// same matrix for subject s in every task, session, and site, scaled by a
// task-dependent expressivity b_k. Sampling a finite scan and computing
// Pearson correlations adds O(1/sqrt(frames)) estimation noise, which is
// what makes identification non-trivial, exactly as in real fMRI.
//
// Everything is deterministic given the config seed: per-(subject, task,
// session) generators are derived by hashing, so scans can be generated
// in any order.

#ifndef NEUROPRINT_SIM_COHORT_H_
#define NEUROPRINT_SIM_COHORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "linalg/matrix.h"
#include "sim/task.h"
#include "util/batch.h"
#include "util/fault.h"
#include "util/random.h"
#include "util/status.h"

namespace neuroprint::sim {

/// Scan session / phase-encoding of the HCP protocol: each subject has an
/// L-R and an R-L scan of every condition, acquired on different days.
enum class Encoding { kLeftRight = 0, kRightLeft = 1 };

const char* EncodingName(Encoding encoding);

struct CohortConfig {
  std::size_t num_subjects = 100;
  std::size_t num_regions = 360;
  /// 0 keeps each task's default frame count; otherwise overrides all.
  std::size_t frames_override = 0;
  double tr_seconds = 0.72;

  // Covariance mixture weights (see file comment).
  double idiosyncratic_variance = 1.0;  ///< delta.
  double baseline_strength = 0.6;       ///< w_base.
  double task_scale = 1.0;              ///< Multiplies each a_k.
  double signature_scale = 1.0;         ///< Multiplies each b_k.
  double session_noise = 0.22;          ///< w_sess.
  double performance_coupling = 0.6;    ///< w_skill.

  /// Extra white noise added to every series sample (scanner noise).
  double measurement_noise = 0.25;

  /// Amplitude of the evoked (stimulus-locked) BOLD response added to
  /// task scans: each task activates a localized subset of regions with a
  /// block design convolved with the canonical HRF (sim/hemodynamics.h).
  /// 0 disables evoked responses (the covariance-only model); the
  /// evoked-response ablation bench sweeps this.
  double evoked_amplitude = 0.0;

  /// Rank of each random PSD component.
  std::size_t component_rank = 6;

  /// Optional sub-cohort structure (e.g. ADHD subtypes): sizes must sum to
  /// num_subjects when non-empty; members share a group component.
  std::vector<std::size_t> group_sizes;
  double group_strength = 0.0;

  std::uint64_t seed = 2026;

  /// Threads for per-subject scan synthesis in BuildGroupMatrix. Scans are
  /// independently seeded (ScanSeed), so parallel generation is exact.
  ParallelContext parallel;

  /// Batch semantics for BuildGroupMatrix: fail-fast (default, the
  /// pre-existing behavior) propagates the lowest-index subject's error;
  /// skip-and-report / quorum drop failed subjects and record them in the
  /// BatchReport (see util/batch.h).
  FailurePolicy failure_policy;

  /// Fault injection for this simulator's calls: a non-empty schedule
  /// replaces the process schedule (NEUROPRINT_FAULT) for the duration of
  /// BuildGroupMatrix (see util/fault.h).
  fault::FaultConfig fault;
};

/// Preset approximating the HCP healthy-young-adult cohort used in the
/// paper (100 unrelated subjects, 360-region atlas).
CohortConfig HcpLikeConfig(std::uint64_t seed = 2026);

/// Preset approximating ADHD-200: 116 regions, children (noisier, shorter
/// scans), controls + three ADHD subtypes.
CohortConfig AdhdLikeConfig(std::uint64_t seed = 4051);

class CohortSimulator {
 public:
  /// Validates the config and precomputes shared components.
  static Result<CohortSimulator> Create(const CohortConfig& config);

  const CohortConfig& config() const { return config_; }

  /// Stable synthetic subject identifiers ("S0001", ...).
  const std::vector<std::string>& subject_ids() const { return subject_ids_; }

  /// Group index of a subject (0 when group_sizes is empty).
  std::size_t GroupOf(std::size_t subject) const;

  /// Region x frames series for one scan, including measurement noise.
  /// Deterministic in (subject, task, encoding) for a fixed config.
  Result<linalg::Matrix> SimulateRegionSeries(std::size_t subject,
                                              TaskType task,
                                              Encoding encoding) const;

  /// Ground-truth behavioural metric (% correct in [50, 100]) for the
  /// subject on a task; the same latent skill perturbs the covariance.
  double PerformanceScore(std::size_t subject, TaskType task) const;

  /// Connectome feature columns for every subject under one condition:
  /// simulate -> Pearson connectome -> vectorize -> stack. Optional
  /// multi-site noise (the paper's Section 3.3.5 operator) is applied to
  /// the series before correlation.
  Result<connectome::GroupMatrix> BuildGroupMatrix(
      TaskType task, Encoding encoding,
      double multisite_noise_fraction = 0.0) const;

  /// BuildGroupMatrix under the config's FailurePolicy, with per-subject
  /// failure accounting. Under skip-and-report / quorum, subjects whose
  /// scan fails any stage (simulate, validate, multisite, connectome,
  /// vectorize) are dropped from the returned matrix and recorded in
  /// `report` (ascending subject index, deterministic at any thread
  /// count); the surviving columns are bit-identical to a clean run
  /// restricted to the same subjects. `report` may be null.
  Result<connectome::GroupMatrix> BuildGroupMatrixWithReport(
      TaskType task, Encoding encoding, double multisite_noise_fraction,
      BatchReport* report) const;

 private:
  CohortSimulator() = default;

  /// The scan covariance Sigma(s, k, e) without the session component.
  linalg::Matrix StableCovariance(std::size_t subject, TaskType task) const;

  CohortConfig config_;
  std::vector<std::string> subject_ids_;
  std::vector<std::size_t> group_of_;
  linalg::Matrix baseline_;                 ///< C0.
  std::vector<linalg::Matrix> task_comp_;   ///< T_k, indexed by task.
  std::vector<linalg::Vector> task_loading_;  ///< Evoked loadings per task.
  std::vector<linalg::Matrix> perf_comp_;   ///< P_k, indexed by task.
  std::vector<linalg::Matrix> signature_;   ///< S_s, indexed by subject.
  std::vector<linalg::Matrix> group_comp_;  ///< Per group.
  std::vector<double> skill_;               ///< Latent skill per subject.
};

/// The paper's multi-site acquisition simulation (Section 3.3.5,
/// verbatim): to every row (time series) of `series`, adds i.i.d.
/// Gaussian noise with mean equal to the row mean and variance equal to
/// `variance_fraction` times the row variance.
Status AddMultisiteNoise(linalg::Matrix& series, double variance_fraction,
                         Rng& rng);

/// Structured scanner/site effect at the same variance fraction: a shared
/// site signal g(t) coupled into every region with a random per-region
/// gain, i.e. a rank-one perturbation of the scan covariance. This models
/// the part of inter-site variation (gain fields, site-specific
/// physiological filtering) that i.i.d. noise cannot express — i.i.d.
/// noise only shrinks all correlations uniformly, which correlation-based
/// matching is invariant to. BuildGroupMatrix applies both operators when
/// multisite_noise_fraction > 0 (see DESIGN.md / EXPERIMENTS.md).
Status AddSiteEffect(linalg::Matrix& series, double variance_fraction,
                     Rng& rng);

}  // namespace neuroprint::sim

#endif  // NEUROPRINT_SIM_COHORT_H_
