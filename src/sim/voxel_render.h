// Rendering simulated region time series into raw 4-D voxel runs with
// planted acquisition artifacts (baseline anatomy, voxel noise, scanner
// drift, slice-timing offsets, head motion), so the full NIfTI ->
// preprocessing -> connectome path is exercised on data where every
// pipeline stage has real work to do.

#ifndef NEUROPRINT_SIM_VOXEL_RENDER_H_
#define NEUROPRINT_SIM_VOXEL_RENDER_H_

#include "atlas/atlas.h"
#include "image/volume.h"
#include "linalg/matrix.h"
#include "preprocess/slice_timing.h"
#include "util/random.h"
#include "util/status.h"

namespace neuroprint::sim {

struct VoxelRenderConfig {
  /// Mean tissue intensity of brain voxels.
  double baseline_intensity = 800.0;
  /// Scale applied to the (unit-variance) region signal.
  double signal_scale = 25.0;
  /// Per-voxel anatomical variation of the baseline (fixed across time).
  double anatomy_noise = 60.0;
  /// White measurement noise per voxel per frame.
  double voxel_noise = 8.0;
  /// Amplitude of a slow polynomial scanner drift shared by all voxels.
  double drift_amplitude = 15.0;
  /// If > 0, applies a random-walk rigid head motion with this step size
  /// (voxels per frame); the pipeline's motion correction must undo it.
  double motion_step = 0.0;
  /// If true, each slice's signal is sampled at its acquisition time
  /// within the TR (per `slice_order`), so the pipeline's slice-time
  /// correction has a real offset to undo. Running slice-time correction
  /// on data WITHOUT planted offsets would itself inject misalignment.
  bool plant_slice_timing = false;
  preprocess::SliceOrder slice_order = preprocess::SliceOrder::kInterleavedOdd;
  double tr_seconds = 0.72;
};

/// Paints `region_series` (regions x frames, from CohortSimulator) onto
/// the atlas grid and adds the configured artifacts.
Result<image::Volume4D> RenderVoxelRun(const atlas::Atlas& atlas,
                                       const linalg::Matrix& region_series,
                                       const VoxelRenderConfig& config,
                                       Rng& rng);

}  // namespace neuroprint::sim

#endif  // NEUROPRINT_SIM_VOXEL_RENDER_H_
